//! Topology corpus importer: parse external topology files into a
//! [`TopologySpec`] without any dependencies.
//!
//! Two input formats are supported:
//!
//! * **Edge list** — a line-oriented text format, also the canonical output
//!   of [`CorpusTopology::to_edge_list`]:
//!
//!   ```text
//!   # comment
//!   node h0 host
//!   node s0 switch
//!   link h0 s0 25Gbps 1us
//!   ```
//!
//!   Bandwidths accept `bps`/`kbps`/`mbps`/`gbps` suffixes (decimal values
//!   allowed, case-insensitive); delays accept `ps`/`ns`/`us`/`ms`/`s`.
//!
//! * **GraphML subset** — enough of GraphML to load corpus files such as the
//!   Topology Zoo exports: `<node id="..">` and `<edge source=".."
//!   target="..">` elements, scanned textually (no XML library). A node is a
//!   switch if it carries `kind="switch"` as an attribute or a
//!   `<data key="kind">switch</data>` child; otherwise it is a host. Edges
//!   may carry `bandwidth`/`delay` the same two ways; absent values default
//!   to 100 Gbps and 1 µs so that capacity-less corpus files still load.
//!
//! Parsing produces a [`CorpusTopology`] — the named graph — which builds
//! into a routed [`TopologySpec`] via [`CorpusTopology::build`] and re-emits
//! canonically via [`CorpusTopology::to_edge_list`]; parse → emit → parse is
//! an identity (the round-trip is covered by tests and by the `topo` bin's
//! `convert` subcommand).

use crate::spec::{NodeKind, TopologyBuilder, TopologySpec};
use hpcc_types::{Bandwidth, Duration};
use std::collections::HashMap;
use std::fmt;

/// A typed corpus-parsing error: what went wrong, and on which input line
/// (1-based; 0 when no line is attributable, e.g. a truncated XML tag).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusError {
    /// A line or tag that doesn't match the grammar.
    Syntax {
        /// 1-based input line (0 = not attributable).
        line: usize,
        /// What was expected.
        msg: String,
    },
    /// A `link`/`edge` references a node never declared.
    UnknownNode {
        /// 1-based input line (0 = not attributable).
        line: usize,
        /// The undeclared node name.
        name: String,
    },
    /// The same node name declared twice.
    DuplicateNode {
        /// 1-based input line (0 = not attributable).
        line: usize,
        /// The repeated node name.
        name: String,
    },
    /// A bandwidth or delay that doesn't parse.
    BadQuantity {
        /// 1-based input line (0 = not attributable).
        line: usize,
        /// The offending token.
        value: String,
    },
    /// A link from a node to itself.
    SelfLink {
        /// 1-based input line (0 = not attributable).
        line: usize,
        /// The node name.
        name: String,
    },
    /// The file parsed but declares no hosts (nothing to simulate).
    NoHosts,
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            CorpusError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node {name:?}")
            }
            CorpusError::DuplicateNode { line, name } => {
                write!(f, "line {line}: duplicate node {name:?}")
            }
            CorpusError::BadQuantity { line, value } => {
                write!(f, "line {line}: unparseable quantity {value:?}")
            }
            CorpusError::SelfLink { line, name } => {
                write!(f, "line {line}: self-link on node {name:?}")
            }
            CorpusError::NoHosts => write!(f, "topology declares no hosts"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// A parsed corpus topology: the named graph, before ports and routes are
/// computed. Node order and link order follow the input file.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusTopology {
    nodes: Vec<(String, NodeKind)>,
    links: Vec<(usize, usize, Bandwidth, Duration)>,
}

impl CorpusTopology {
    /// Node names and kinds, in declaration order (which is also
    /// [`hpcc_types::NodeId`] order after [`CorpusTopology::build`]).
    pub fn nodes(&self) -> &[(String, NodeKind)] {
        &self.nodes
    }

    /// Links as `(a, b, bandwidth, delay)` node-index tuples, in declaration
    /// order (which is also link-index order after
    /// [`CorpusTopology::build`] — the index fault specs reference).
    pub fn links(&self) -> &[(usize, usize, Bandwidth, Duration)] {
        &self.links
    }

    /// Number of declared hosts.
    pub fn host_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|(_, k)| *k == NodeKind::Host)
            .count()
    }

    /// Build the routed [`TopologySpec`] (ports assigned in link order, ECMP
    /// routes computed).
    pub fn build(&self) -> TopologySpec {
        let mut b = TopologyBuilder::new();
        let ids: Vec<_> = self
            .nodes
            .iter()
            .map(|(_, kind)| match kind {
                NodeKind::Host => b.add_host(),
                NodeKind::Switch => b.add_switch(),
            })
            .collect();
        for &(a, z, bw, delay) in &self.links {
            b.link(ids[a], ids[z], bw, delay);
        }
        b.build()
    }

    /// Emit the canonical edge list: nodes first, then links, base units
    /// (`bps`, `ps`) so the round-trip is exact.
    pub fn to_edge_list(&self) -> String {
        let mut out = String::from("# hpcc-topology corpus (canonical edge list)\n");
        for (name, kind) in &self.nodes {
            let kind = match kind {
                NodeKind::Host => "host",
                NodeKind::Switch => "switch",
            };
            out.push_str(&format!("node {name} {kind}\n"));
        }
        for &(a, z, bw, delay) in &self.links {
            out.push_str(&format!(
                "link {} {} {}bps {}ps\n",
                self.nodes[a].0,
                self.nodes[z].0,
                bw.as_bps(),
                delay.as_ps()
            ));
        }
        out
    }
}

/// Parse a corpus file, sniffing the format: content containing a
/// `<graphml` or `<?xml` marker is parsed as GraphML, anything else as an
/// edge list.
pub fn parse(text: &str) -> Result<CorpusTopology, CorpusError> {
    if text.contains("<graphml") || text.trim_start().starts_with("<?xml") {
        parse_graphml(text)
    } else {
        parse_edge_list(text)
    }
}

/// Parse the line-oriented edge-list format (see the module docs).
pub fn parse_edge_list(text: &str) -> Result<CorpusTopology, CorpusError> {
    let mut nodes: Vec<(String, NodeKind)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut links = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        match fields[0] {
            "node" => {
                if fields.len() != 3 {
                    return Err(CorpusError::Syntax {
                        line,
                        msg: format!("expected `node <name> host|switch`, got {content:?}"),
                    });
                }
                let kind = match fields[2] {
                    "host" => NodeKind::Host,
                    "switch" => NodeKind::Switch,
                    other => {
                        return Err(CorpusError::Syntax {
                            line,
                            msg: format!("node kind must be `host` or `switch`, got {other:?}"),
                        })
                    }
                };
                let name = fields[1].to_string();
                if index.contains_key(&name) {
                    return Err(CorpusError::DuplicateNode { line, name });
                }
                index.insert(name.clone(), nodes.len());
                nodes.push((name, kind));
            }
            "link" => {
                if fields.len() != 5 {
                    return Err(CorpusError::Syntax {
                        line,
                        msg: format!(
                            "expected `link <a> <b> <bandwidth> <delay>`, got {content:?}"
                        ),
                    });
                }
                let a = *index
                    .get(fields[1])
                    .ok_or_else(|| CorpusError::UnknownNode {
                        line,
                        name: fields[1].to_string(),
                    })?;
                let z = *index
                    .get(fields[2])
                    .ok_or_else(|| CorpusError::UnknownNode {
                        line,
                        name: fields[2].to_string(),
                    })?;
                if a == z {
                    return Err(CorpusError::SelfLink {
                        line,
                        name: fields[1].to_string(),
                    });
                }
                let bw = parse_bandwidth(fields[3], line)?;
                let delay = parse_delay(fields[4], line)?;
                links.push((a, z, bw, delay));
            }
            other => {
                return Err(CorpusError::Syntax {
                    line,
                    msg: format!("unknown directive {other:?} (expected `node` or `link`)"),
                })
            }
        }
    }
    if !nodes.iter().any(|(_, k)| *k == NodeKind::Host) {
        return Err(CorpusError::NoHosts);
    }
    Ok(CorpusTopology { nodes, links })
}

/// Parse the GraphML subset (see the module docs).
pub fn parse_graphml(text: &str) -> Result<CorpusTopology, CorpusError> {
    let mut nodes: Vec<(String, NodeKind)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut links = Vec::new();
    let mut cursor = 0usize;
    while let Some((tag, body, next)) = next_element(text, cursor, "node") {
        cursor = next;
        let line = line_of(text, tag.1);
        let id = attr(&tag.0, "id").ok_or_else(|| CorpusError::Syntax {
            line,
            msg: "<node> without an id attribute".into(),
        })?;
        let kind_str = attr(&tag.0, "kind")
            .or_else(|| body.as_deref().and_then(|b| data_key(b, "kind")))
            .unwrap_or_else(|| "host".into());
        let kind = match kind_str.as_str() {
            "host" => NodeKind::Host,
            "switch" => NodeKind::Switch,
            other => {
                return Err(CorpusError::Syntax {
                    line,
                    msg: format!("node kind must be `host` or `switch`, got {other:?}"),
                })
            }
        };
        if index.contains_key(&id) {
            return Err(CorpusError::DuplicateNode { line, name: id });
        }
        index.insert(id.clone(), nodes.len());
        nodes.push((id, kind));
    }
    cursor = 0;
    while let Some((tag, body, next)) = next_element(text, cursor, "edge") {
        cursor = next;
        let line = line_of(text, tag.1);
        let src = attr(&tag.0, "source").ok_or_else(|| CorpusError::Syntax {
            line,
            msg: "<edge> without a source attribute".into(),
        })?;
        let dst = attr(&tag.0, "target").ok_or_else(|| CorpusError::Syntax {
            line,
            msg: "<edge> without a target attribute".into(),
        })?;
        let a = *index.get(&src).ok_or(CorpusError::UnknownNode {
            line,
            name: src.clone(),
        })?;
        let z = *index.get(&dst).ok_or(CorpusError::UnknownNode {
            line,
            name: dst.clone(),
        })?;
        if a == z {
            return Err(CorpusError::SelfLink { line, name: src });
        }
        let bw = match attr(&tag.0, "bandwidth")
            .or_else(|| body.as_deref().and_then(|b| data_key(b, "bandwidth")))
        {
            Some(v) => parse_bandwidth(&v, line)?,
            None => Bandwidth::from_gbps(100),
        };
        let delay = match attr(&tag.0, "delay")
            .or_else(|| body.as_deref().and_then(|b| data_key(b, "delay")))
        {
            Some(v) => parse_delay(&v, line)?,
            None => Duration::from_us(1),
        };
        links.push((a, z, bw, delay));
    }
    if !nodes.iter().any(|(_, k)| *k == NodeKind::Host) {
        return Err(CorpusError::NoHosts);
    }
    Ok(CorpusTopology { nodes, links })
}

/// Find the next `<name ...>` element at or after `from`. Returns the
/// opening tag's text and byte offset, the inner body for container
/// elements (`None` for self-closing `<name .../>`), and the scan position
/// after the element.
#[allow(clippy::type_complexity)]
fn next_element(
    text: &str,
    from: usize,
    name: &str,
) -> Option<((String, usize), Option<String>, usize)> {
    let open = format!("<{name}");
    let mut search = from;
    loop {
        let start = text[search..].find(&open)? + search;
        // Reject partial matches like `<nodeset` for `<node`.
        let after = text[start + open.len()..].chars().next()?;
        if !(after.is_whitespace() || after == '>' || after == '/') {
            search = start + open.len();
            continue;
        }
        let tag_end = text[start..].find('>')? + start;
        let tag = text[start..=tag_end].to_string();
        if tag.ends_with("/>") {
            return Some(((tag, start), None, tag_end + 1));
        }
        let close = format!("</{name}>");
        let body_end = text[tag_end + 1..].find(&close)? + tag_end + 1;
        let body = text[tag_end + 1..body_end].to_string();
        return Some(((tag, start), Some(body), body_end + close.len()));
    }
}

/// Extract `name="value"` (or single-quoted) from an opening tag.
fn attr(tag: &str, name: &str) -> Option<String> {
    for quote in ['"', '\''] {
        let needle = format!("{name}={quote}");
        if let Some(at) = tag.find(&needle) {
            let rest = &tag[at + needle.len()..];
            return rest.find(quote).map(|end| rest[..end].to_string());
        }
    }
    None
}

/// Extract the text of `<data key="name">text</data>` from an element body.
fn data_key(body: &str, name: &str) -> Option<String> {
    let mut cursor = 0;
    while let Some((tag, inner, next)) = next_element(body, cursor, "data") {
        cursor = next;
        if attr(&tag.0, "key").as_deref() == Some(name) {
            return inner.map(|s| s.trim().to_string());
        }
    }
    None
}

/// 1-based line number of a byte offset.
fn line_of(text: &str, offset: usize) -> usize {
    text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Split `"25Gbps"` into `(25.0, "gbps")`; decimal values allowed.
fn split_quantity(token: &str, line: usize) -> Result<(f64, String), CorpusError> {
    let split = token
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(token.len());
    let (num, unit) = token.split_at(split);
    let value: f64 = num.parse().map_err(|_| CorpusError::BadQuantity {
        line,
        value: token.to_string(),
    })?;
    if value < 0.0 {
        return Err(CorpusError::BadQuantity {
            line,
            value: token.to_string(),
        });
    }
    Ok((value, unit.to_ascii_lowercase()))
}

fn parse_bandwidth(token: &str, line: usize) -> Result<Bandwidth, CorpusError> {
    let (value, unit) = split_quantity(token, line)?;
    let scale = match unit.as_str() {
        "gbps" | "g" => 1e9,
        "mbps" | "m" => 1e6,
        "kbps" | "k" => 1e3,
        "bps" | "" => 1.0,
        _ => {
            return Err(CorpusError::BadQuantity {
                line,
                value: token.to_string(),
            })
        }
    };
    Ok(Bandwidth::from_bps((value * scale).round() as u64))
}

fn parse_delay(token: &str, line: usize) -> Result<Duration, CorpusError> {
    let (value, unit) = split_quantity(token, line)?;
    let scale = match unit.as_str() {
        "s" => 1e12,
        "ms" => 1e9,
        "us" => 1e6,
        "ns" => 1e3,
        "ps" | "" => 1.0,
        _ => {
            return Err(CorpusError::BadQuantity {
                line,
                value: token.to_string(),
            })
        }
    };
    Ok(Duration::from_ps((value * scale).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGE_LIST: &str = "\
# a dumbbell
node h0 host
node h1 host
node s0 switch
node s1 switch
link h0 s0 25Gbps 1us   # host uplink
link h1 s1 25Gbps 1us
link s0 s1 100Gbps 2us
";

    #[test]
    fn edge_list_parses_and_builds() {
        let corpus = parse(EDGE_LIST).unwrap();
        assert_eq!(corpus.nodes().len(), 4);
        assert_eq!(corpus.host_count(), 2);
        assert_eq!(corpus.links().len(), 3);
        assert_eq!(corpus.links()[2].2, Bandwidth::from_gbps(100));
        assert_eq!(corpus.links()[2].3, Duration::from_us(2));
        let topo = corpus.build();
        assert_eq!(topo.hosts().len(), 2);
        assert_eq!(topo.switches().len(), 2);
        assert_eq!(topo.path_hops(topo.hosts()[0], topo.hosts()[1]), Some(3));
    }

    #[test]
    fn edge_list_round_trips_canonically() {
        let corpus = parse(EDGE_LIST).unwrap();
        let emitted = corpus.to_edge_list();
        let back = parse(&emitted).unwrap();
        assert_eq!(back, corpus);
        // The canonical form is a fixed point.
        assert_eq!(back.to_edge_list(), emitted);
    }

    #[test]
    fn quantities_accept_every_documented_unit() {
        let text = "\
node a host
node b host
node s switch
link a s 1000000bps 1000ps
link b s 0.5Gbps 1.5ms
";
        let corpus = parse_edge_list(text).unwrap();
        assert_eq!(corpus.links()[0].2, Bandwidth::from_bps(1_000_000));
        assert_eq!(corpus.links()[0].3, Duration::from_ps(1_000));
        assert_eq!(corpus.links()[1].2, Bandwidth::from_bps(500_000_000));
        assert_eq!(corpus.links()[1].3, Duration::from_ps(1_500_000_000));
    }

    #[test]
    fn graphml_subset_parses() {
        let text = r#"<?xml version="1.0"?>
<graphml>
  <graph edgedefault="undirected">
    <node id="h0"/>
    <node id="h1"><data key="kind">host</data></node>
    <node id="s0" kind="switch"/>
    <edge source="h0" target="s0" bandwidth="25Gbps" delay="1us"/>
    <edge source="h1" target="s0">
      <data key="bandwidth">10Gbps</data>
      <data key="delay">500ns</data>
    </edge>
  </graph>
</graphml>
"#;
        let corpus = parse(text).unwrap();
        assert_eq!(corpus.nodes().len(), 3);
        assert_eq!(corpus.nodes()[2].1, NodeKind::Switch);
        assert_eq!(corpus.links().len(), 2);
        assert_eq!(corpus.links()[0].2, Bandwidth::from_gbps(25));
        assert_eq!(corpus.links()[1].2, Bandwidth::from_gbps(10));
        assert_eq!(corpus.links()[1].3, Duration::from_ps(500_000));
        // GraphML converts into the same canonical edge list.
        let canonical = corpus.to_edge_list();
        assert_eq!(parse(&canonical).unwrap(), corpus);
    }

    #[test]
    fn graphml_defaults_apply_when_capacities_are_absent() {
        let text = r#"<graphml>
<node id="a"/><node id="b"/><node id="s" kind="switch"/>
<edge source="a" target="s"/><edge source="b" target="s"/>
</graphml>"#;
        let corpus = parse(text).unwrap();
        assert_eq!(corpus.links()[0].2, Bandwidth::from_gbps(100));
        assert_eq!(corpus.links()[0].3, Duration::from_us(1));
    }

    #[test]
    fn errors_are_typed_and_carry_lines() {
        let unknown = parse_edge_list("node a host\nlink a b 1Gbps 1us\n");
        assert_eq!(
            unknown,
            Err(CorpusError::UnknownNode {
                line: 2,
                name: "b".into()
            })
        );
        let dup = parse_edge_list("node a host\nnode a switch\n");
        assert_eq!(
            dup,
            Err(CorpusError::DuplicateNode {
                line: 2,
                name: "a".into()
            })
        );
        let bad = parse_edge_list("node a host\nnode s switch\nlink a s 1Xbps 1us\n");
        assert_eq!(
            bad,
            Err(CorpusError::BadQuantity {
                line: 3,
                value: "1Xbps".into()
            })
        );
        let selfy = parse_edge_list("node a host\nlink a a 1Gbps 1us\n");
        assert!(matches!(selfy, Err(CorpusError::SelfLink { line: 2, .. })));
        let hostless = parse_edge_list("node s switch\n");
        assert_eq!(hostless, Err(CorpusError::NoHosts));
        let syntax = parse_edge_list("frob a b\n");
        assert!(matches!(syntax, Err(CorpusError::Syntax { line: 1, .. })));
        // Errors render with their line number.
        assert!(unknown.unwrap_err().to_string().contains("line 2"));
    }
}
