//! The sanctioned wall-clock for liveness machinery.
//!
//! Simulation results must never depend on the host clock — the simlint
//! `wall-clock` rule bans `Instant::now` / `SystemTime` tokens across the
//! library crates. The campaign fabric, however, is *liveness* code: lease
//! timeouts and heartbeat deadlines are real-time concepts by definition,
//! and they never touch a canonical byte (digests and wire lines carry only
//! simulated quantities; even `wall_ns` is excluded from digests and from
//! `CampaignReport::to_json`). This module is the single allowed funnel for
//! those reads, so every wall-clock dependency in deterministic crates is
//! grep-able in one place and the lint exemption stays one file wide.

/// Read the monotonic host clock (the only sanctioned wall-clock read in
/// the deterministic crates; see the module docs).
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clock_is_monotonic() {
        let a = super::now();
        let b = super::now();
        assert!(b >= a);
    }
}
