//! Building, running and analysing one simulation.

use hpcc_sim::{SimConfig, SimOutput, Simulator};
use hpcc_stats::fct::{FlowFct, SizeBucketStats};
use hpcc_stats::pfc::{pause_burst_spread, PfcSummary};
use hpcc_stats::queue::{queue_cdf, queue_percentile};
use hpcc_stats::series::goodput_series_gbps;
use hpcc_stats::{FctAnalyzer, FctBucket, Percentiles};
use hpcc_topology::{NodeKind, TopologySpec};
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, SimTime};

/// One fully specified simulation: a topology, a behavioural configuration
/// and a flow list, plus a label used in reports.
pub struct Experiment {
    /// Human-readable label ("HPCC", "DCQCN Kmin=100K", …).
    pub label: String,
    /// The network to simulate.
    pub topo: TopologySpec,
    /// Host/switch behaviour.
    pub cfg: SimConfig,
    /// Flows to inject.
    pub flows: Vec<FlowSpec>,
    /// Host NIC rate (used for ideal-FCT computation).
    pub host_bw: Bandwidth,
}

impl Experiment {
    /// Run the simulation and wrap the raw output with analysis helpers.
    pub fn run(self) -> ExperimentResults {
        let analyzer = FctAnalyzer::new(self.host_bw, self.cfg.base_rtt, self.cfg.int_enabled);
        let host_count = self.topo.hosts().len();
        let mut sim = Simulator::new(self.topo, self.cfg);
        let flow_count = self.flows.len();
        sim.add_flows(self.flows.iter().copied());
        let out = sim.run();
        ExperimentResults {
            label: self.label,
            analyzer,
            out,
            flow_count,
            host_count,
        }
    }
}

/// The outcome of one experiment plus derived-metric helpers.
pub struct ExperimentResults {
    /// Label copied from the experiment.
    pub label: String,
    /// Ideal-FCT model used for slowdowns.
    pub analyzer: FctAnalyzer,
    /// Raw simulator output.
    pub out: SimOutput,
    /// Number of flows that were injected.
    pub flow_count: usize,
    /// Number of hosts in the topology.
    pub host_count: usize,
}

impl ExperimentResults {
    /// Per-flow (size, FCT) records.
    pub fn flow_fcts(&self) -> Vec<FlowFct> {
        self.out
            .flows
            .iter()
            .map(|f| FlowFct {
                size: f.size,
                fct: f.fct(),
            })
            .collect()
    }

    /// FCT-slowdown summary per flow-size bucket.
    pub fn slowdown_buckets(&self, buckets: &[FctBucket]) -> Vec<SizeBucketStats> {
        self.analyzer.bucketed_slowdowns(&self.flow_fcts(), buckets)
    }

    /// Overall FCT-slowdown percentiles.
    pub fn slowdown_overall(&self) -> Option<Percentiles> {
        self.analyzer.overall(&self.flow_fcts())
    }

    /// Slowdown percentiles restricted to flows of at most `max_size` bytes
    /// (the paper's "flows shorter than 3KB" style claims).
    pub fn slowdown_for_sizes_up_to(&self, max_size: u64) -> Option<Percentiles> {
        let flows: Vec<FlowFct> = self
            .flow_fcts()
            .into_iter()
            .filter(|f| f.size <= max_size)
            .collect();
        self.analyzer.overall(&flows)
    }

    /// Queue-length CDF points from the sampled histogram.
    pub fn queue_cdf(&self) -> Vec<(u64, f64)> {
        queue_cdf(&self.out.queue_histogram, self.out.queue_histogram_bin)
    }

    /// Queue length at a percentile of the sampled histogram.
    pub fn queue_percentile(&self, p: f64) -> Option<u64> {
        queue_percentile(&self.out.queue_histogram, self.out.queue_histogram_bin, p)
    }

    /// PFC summary over every port in the run.
    pub fn pfc_summary(&self) -> PfcSummary {
        let pauses: Vec<Duration> = self.out.ports.values().map(|c| c.pause_duration).collect();
        let frames: u64 = self.out.ports.values().map(|c| c.pause_frames_sent).sum();
        PfcSummary::new(
            &pauses,
            frames,
            self.out.elapsed.saturating_since(SimTime::ZERO),
        )
    }

    /// Per-burst count of distinct switches that emitted PFC pauses (the
    /// propagation-spread proxy for Figure 1a).
    pub fn pfc_burst_spread(&self, gap: Duration) -> Vec<usize> {
        let events: Vec<(SimTime, NodeId)> = self
            .out
            .pfc_events
            .iter()
            .map(|e| (e.time, e.node))
            .collect();
        pause_burst_spread(&events, gap)
    }

    /// Goodput series (Gbps) of one flow, if goodput tracing was enabled.
    pub fn goodput_gbps(&self, flow: FlowId) -> Vec<f64> {
        self.out
            .flow_goodput
            .get(&flow)
            .map(|bins| goodput_series_gbps(bins, self.out.flow_goodput_bin))
            .unwrap_or_default()
    }

    /// Fraction of injected flows that completed within the horizon.
    pub fn completion_fraction(&self) -> f64 {
        if self.flow_count == 0 {
            return 1.0;
        }
        self.out.flows.len() as f64 / self.flow_count as f64
    }

    /// Total goodput delivered to receivers divided by elapsed time and host
    /// capacity (an average utilization figure).
    pub fn average_utilization(&self, host_bw: Bandwidth) -> f64 {
        let bytes: u64 = self.out.flows.iter().map(|f| f.size).sum();
        let secs = self.out.elapsed.as_secs_f64();
        if secs == 0.0 || self.host_count == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (secs * self.host_count as f64 * host_bw.as_bps() as f64)
    }
}

/// Count host-facing vs fabric ports of a topology (used in reports).
pub fn port_census(topo: &TopologySpec) -> (usize, usize) {
    let mut host_ports = 0;
    let mut fabric_ports = 0;
    for &s in topo.switches() {
        for p in topo.ports(s) {
            match topo.kind(p.peer_node) {
                NodeKind::Host => host_ports += 1,
                NodeKind::Switch => fabric_ports += 1,
            }
        }
    }
    (host_ports, fabric_ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_cc::CcAlgorithm;
    use hpcc_topology::star;

    fn tiny_experiment() -> Experiment {
        let bw = Bandwidth::from_gbps(100);
        let topo = star(3, bw, Duration::from_us(1));
        let rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), bw, rtt);
        cfg.end_time = SimTime::from_ms(5);
        cfg.queue_sample_interval = Some(Duration::from_us(2));
        cfg.flow_throughput_bin = Some(Duration::from_us(50));
        let hosts = topo.hosts().to_vec();
        let flows = vec![
            FlowSpec::new(FlowId(1), hosts[0], hosts[2], 500_000, SimTime::ZERO),
            FlowSpec::new(FlowId(2), hosts[1], hosts[2], 500_000, SimTime::ZERO),
            FlowSpec::new(FlowId(3), hosts[0], hosts[1], 2_000, SimTime::from_us(50)),
        ];
        Experiment {
            label: "tiny".to_string(),
            topo,
            cfg,
            flows,
            host_bw: bw,
        }
    }

    #[test]
    fn experiment_runs_and_derives_metrics() {
        let res = tiny_experiment().run();
        assert_eq!(res.label, "tiny");
        assert_eq!(res.out.flows.len(), 3);
        assert_eq!(res.completion_fraction(), 1.0);
        // Slowdowns exist and are at least 1.
        let overall = res.slowdown_overall().unwrap();
        assert_eq!(overall.count, 3);
        assert!(overall.p50 >= 1.0);
        // The small flow has a small slowdown bucketed separately.
        let small = res.slowdown_for_sizes_up_to(3_000).unwrap();
        assert_eq!(small.count, 1);
        // Queue CDF exists and ends at 1.
        let cdf = res.queue_cdf();
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!(res.queue_percentile(50.0).is_some());
        // No PFC with HPCC here.
        let pfc = res.pfc_summary();
        assert_eq!(pfc.pause_time_fraction(), 0.0);
        assert!(res.pfc_burst_spread(Duration::from_us(100)).is_empty());
        // Goodput series sums to the flow size.
        let g = res.goodput_gbps(FlowId(1));
        assert!(!g.is_empty());
        let util = res.average_utilization(Bandwidth::from_gbps(100));
        assert!(util > 0.0 && util < 1.0);
    }

    #[test]
    fn port_census_counts_host_and_fabric_ports() {
        let topo = star(4, Bandwidth::from_gbps(25), Duration::from_us(1));
        assert_eq!(port_census(&topo), (4, 0));
        let pod = hpcc_topology::testbed_pod(Duration::from_us(1));
        // 32 host-facing ports; 4 ToR uplinks + 4 Agg downlinks = 8 fabric.
        assert_eq!(port_census(&pod), (32, 8));
    }
}
