//! End-to-end tests of the fault-injection subsystem.
//!
//! Four guarantees are pinned here:
//!
//! 1. **The fault-free path is frozen.** With `"faults"` omitted — or an
//!    empty `FaultSpec` attached — presets reproduce the digests recorded
//!    before the subsystem landed (`queueing.rs` and `golden_digests.rs`
//!    pin the full tables; representative entries are re-checked here
//!    against the fault plumbing specifically).
//! 2. **Faulted runs are deterministic** — bit-identical on a re-run, seed-
//!    sensitive, and digest-pinned for the `degraded_link_cc_matrix` preset,
//!    where the six CC schemes separate under one identical fault timeline.
//! 3. **Distribution is transparent.** A faulted campaign merges
//!    bit-identically to `run_serial()` across shards, fault summaries
//!    included.
//! 4. **Malformed `FaultSpec`s are typed errors**, never panics.

use hpcc_core::campaign::digest_output;
use hpcc_core::presets::{
    degraded_link_cc_matrix, fattree_fb_hadoop, fattree_linkflap_sweep, fault_smoke,
    first_fabric_link, SCHEME_SET_FIG11,
};
use hpcc_core::scenario::TopologyChoice;
use hpcc_core::{Campaign, CampaignReport, CcSpec, FaultSpec, ScenarioSpec, ShardPlan};
use hpcc_sim::{DegradedLink, FlowControlMode, LinkDownMode, LinkFault, StragglerHost};
use hpcc_topology::FatTreeParams;
use hpcc_types::Duration;

/// The `fattree HPCC` golden preset from `queueing.rs`: the digest recorded
/// before the fault subsystem landed.
fn fattree_reference() -> (ScenarioSpec, u64) {
    (
        fattree_fb_hadoop(
            "fattree HPCC",
            CcSpec::by_label("HPCC"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(2),
            true,
            FlowControlMode::LossyIrn,
            9,
        ),
        9151915604825334824,
    )
}

/// A small faulted scenario used by the determinism tests: one pause-mode
/// flap on the first fabric uplink of the small Clos.
fn flapped(seed: u64) -> ScenarioSpec {
    fattree_linkflap_sweep(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.3,
        Duration::from_ms(2),
        &[1],
        seed,
    )
    .scenarios()[0]
        .clone()
}

#[test]
fn no_fault_path_reproduces_recorded_digests() {
    let (spec, golden) = fattree_reference();
    assert!(spec.faults.is_none());
    let omitted = digest_output(&spec.run().out);
    assert_eq!(
        omitted, golden,
        "with faults omitted the pre-fault-subsystem digest must reproduce"
    );
    // An *empty* FaultSpec allocates no timeline and changes nothing either.
    let empty = spec.with_faults(FaultSpec::new());
    assert_eq!(
        digest_output(&empty.run().out),
        golden,
        "an empty FaultSpec must be indistinguishable from omission"
    );
}

#[test]
fn faulted_runs_are_deterministic_and_seed_sensitive() {
    let (baseline, golden) = fattree_reference();
    let spec = flapped(9);
    let once = spec.run();
    let again = spec.run();
    assert_eq!(
        digest_output(&once.out),
        digest_output(&again.out),
        "a faulted run must be bit-identical on a re-run"
    );
    assert!(once.out.fault_events > 0, "the flap must actually fire");
    // The fault changed the run relative to the fault-free baseline...
    let _ = baseline;
    assert_ne!(digest_output(&once.out), golden);
    // ...and the workload seed still matters under the identical timeline.
    assert_ne!(
        digest_output(&flapped(9).run().out),
        digest_output(&flapped(10).run().out)
    );
}

#[test]
fn linkflap_sweep_scales_fault_events_with_flap_count() {
    let sweep = fattree_linkflap_sweep(
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.3,
        Duration::from_ms(2),
        &[0, 3],
        42,
    );
    let report = sweep.run_serial();
    let one = report.results[0].faults.as_ref().expect("fault summary");
    let four = report.results[1].faults.as_ref().expect("fault summary");
    // flaps = n means n + 1 down/up cycles = 2(n + 1) transitions.
    assert_eq!(one.events, 2);
    assert_eq!(four.events, 8);
    assert!(four.link_downtime_ps > one.link_downtime_ps);
    assert!(one.utilization_while_up > 0.0);
    // Pause mode holds frames rather than dropping them.
    assert_eq!(one.dropped_packets, 0);
    assert_ne!(
        report.results[0].digest, report.results[1].digest,
        "more flaps must change the run"
    );
}

/// Digest-pinned separation of the six CC schemes under one identical fault
/// timeline (recorded on x86_64 Linux like the other golden tables): the
/// `degraded_link_cc_matrix` preset at laptop scale.
const GOLDEN_DEGRADED: [(&str, u64); 6] = [
    ("DCQCN", 2164597579519657451),
    ("TIMELY", 16118112946681124860),
    ("DCQCN+win", 5737231325687841710),
    ("TIMELY+win", 16084489658374093646),
    ("DCTCP", 5134240267268709740),
    ("HPCC", 16370428885969334037),
];

#[test]
fn degraded_matrix_separates_all_six_schemes_under_one_timeline() {
    let campaign = degraded_link_cc_matrix(FatTreeParams::small(), 0.3, Duration::from_ms(2), 42);
    let report = campaign.run_serial();
    assert_eq!(report.results.len(), SCHEME_SET_FIG11.len());
    let actual: Vec<(String, u64)> = report
        .results
        .iter()
        .map(|r| (r.name.trim_start_matches("degraded ").to_string(), r.digest))
        .collect();
    let expected: Vec<(String, u64)> = GOLDEN_DEGRADED
        .iter()
        .map(|(n, d)| (n.to_string(), *d))
        .collect();
    assert_eq!(
        actual, expected,
        "degraded-matrix runs no longer reproduce the recorded digests \
         (actual on the left)"
    );
    // All six digests are pairwise distinct: the schemes measurably separate.
    for i in 0..actual.len() {
        for j in i + 1..actual.len() {
            assert_ne!(
                actual[i].1, actual[j].1,
                "{} and {} did not separate under the fault timeline",
                actual[i].0, actual[j].0
            );
        }
    }
    // Every scenario saw the identical timeline and lost packets to the
    // degraded link's iid loss.
    for r in &report.results {
        let f = r.faults.as_ref().expect("fault summary");
        assert_eq!(f.events, 2, "{}: one DegradeOn + one DegradeOff", r.name);
        assert!(f.dropped_packets > 0, "{}: iid loss never fired", r.name);
        assert!(f.goodput_during_faults > 0, "{}", r.name);
    }
}

#[test]
fn faulted_campaign_merges_bit_identical_across_two_shards() {
    let campaign = fault_smoke(FatTreeParams::small(), 0.2, Duration::from_ms(2), 7);
    // The manifest round trip preserves the fault specs.
    let back = Campaign::from_json_str(&campaign.to_json_string()).unwrap();
    assert_eq!(back, campaign);
    let serial = campaign.run_serial();
    let mut streams = Vec::new();
    for shard in 0..2 {
        let mut buf = Vec::new();
        campaign
            .run_shard_streaming(ShardPlan::new(shard, 2), &mut buf)
            .unwrap();
        streams.push(String::from_utf8(buf).unwrap());
    }
    let merged = hpcc_core::wire::merge_shard_streams(
        streams.iter().map(String::as_str),
        Some(campaign.len()),
    )
    .unwrap();
    assert_eq!(merged.digests(), serial.digests());
    assert_eq!(
        merged.to_json_string(),
        serial.to_json_string(),
        "canonical JSON must be bit-identical serial vs 2-shard merge"
    );
    // Fault summaries crossed the wire on both scenarios.
    for r in &merged.results {
        let f = r.faults.as_ref().unwrap_or_else(|| panic!("{}", r.name));
        assert!(f.events > 0, "{}", r.name);
        assert!(f.utilization_while_up > 0.0, "{}", r.name);
    }
    // An outage on a *host uplink* (link 0 of the fat tree is host 0's ToR
    // link) is administrative NIC downtime: it shrinks the
    // `utilization_while_up` denominator, so the while-up figure strictly
    // exceeds the legacy average, which keeps counting the dead time.
    let end = Duration::from_ms(2);
    let spec = fattree_fb_hadoop(
        "host uplink down",
        CcSpec::by_label("HPCC"),
        FatTreeParams::small(),
        0.2,
        end,
        false,
        FlowControlMode::Lossless,
        7,
    )
    .with_faults(FaultSpec::new().with_link_fault(LinkFault {
        link: 0,
        at: end.mul_f64(0.25),
        down_for: end.mul_f64(0.5),
        flaps: 0,
        period: Duration::ZERO,
        mode: LinkDownMode::Pause,
    }));
    let results = spec.run();
    assert!(results.out.host_nic_downtime > Duration::ZERO);
    let host_bw = spec.topology.host_bw();
    assert!(
        results.utilization_while_up(host_bw) > results.average_utilization(host_bw),
        "downtime must shrink the utilization denominator"
    );
    // The canonical report decodes and re-encodes byte-identically.
    let decoded = CampaignReport::from_json_str(&serial.to_json_string()).unwrap();
    assert_eq!(decoded.to_json_string(), serial.to_json_string());
}

#[test]
fn committed_fault_smoke_manifest_is_canonical_and_runnable() {
    let committed = include_str!("../../../manifests/fault_smoke.json");
    let campaign = Campaign::from_json_str(committed).unwrap();
    // The committed manifest is exactly the canonical serialization of the
    // generating preset: regenerate with
    // `fault_smoke(FatTreeParams::small(), 0.2, Duration::from_ms(2), 7)`.
    let generated = fault_smoke(FatTreeParams::small(), 0.2, Duration::from_ms(2), 7);
    assert_eq!(campaign, generated);
    assert_eq!(committed.trim_end(), generated.to_json_string());
    // Both scenarios build and declare faults.
    for spec in campaign.scenarios() {
        assert!(spec.faults.is_some());
        assert!(spec.try_build().is_ok(), "{}", spec.name);
    }
}

#[test]
fn malformed_fault_specs_return_typed_errors_not_panics() {
    let base = || {
        fattree_fb_hadoop(
            "faulty",
            CcSpec::by_label("HPCC"),
            FatTreeParams::small(),
            0.3,
            Duration::from_ms(1),
            false,
            FlowControlMode::Lossless,
            1,
        )
    };
    let err = |spec: ScenarioSpec| -> String {
        match spec.try_build() {
            Ok(_) => panic!("malformed FaultSpec must not build"),
            Err(e) => e.to_string(),
        }
    };

    // Unknown link id.
    let e = err(
        base().with_faults(FaultSpec::new().with_link_fault(LinkFault {
            link: 10_000,
            at: Duration::from_us(10),
            down_for: Duration::from_us(10),
            flaps: 0,
            period: Duration::ZERO,
            mode: LinkDownMode::Pause,
        })),
    );
    assert!(e.contains("faults:") && e.contains("10000"), "{e}");

    // Zero-length flap.
    let e = err(
        base().with_faults(FaultSpec::new().with_link_fault(LinkFault {
            link: 0,
            at: Duration::from_us(10),
            down_for: Duration::ZERO,
            flaps: 2,
            period: Duration::from_us(50),
            mode: LinkDownMode::Drop,
        })),
    );
    assert!(e.contains("zero-length"), "{e}");

    // Flap period shorter than the outage.
    let e = err(
        base().with_faults(FaultSpec::new().with_link_fault(LinkFault {
            link: 0,
            at: Duration::from_us(10),
            down_for: Duration::from_us(50),
            flaps: 2,
            period: Duration::from_us(20),
            mode: LinkDownMode::Pause,
        })),
    );
    assert!(e.contains("period must exceed"), "{e}");

    // Overlapping outage intervals on one link.
    let e = err(base().with_faults(
        FaultSpec::new()
            .with_link_fault(LinkFault {
                link: 0,
                at: Duration::from_us(10),
                down_for: Duration::from_us(100),
                flaps: 0,
                period: Duration::ZERO,
                mode: LinkDownMode::Pause,
            })
            .with_link_fault(LinkFault {
                link: 0,
                at: Duration::from_us(50),
                down_for: Duration::from_us(100),
                flaps: 0,
                period: Duration::ZERO,
                mode: LinkDownMode::Pause,
            }),
    ));
    assert!(e.contains("overlapping"), "{e}");

    // Loss probability out of range.
    let e = err(
        base().with_faults(FaultSpec::new().with_degraded_link(DegradedLink {
            link: 0,
            from: Duration::from_us(10),
            until: Duration::from_us(100),
            extra_delay: Duration::ZERO,
            loss: 1.5,
        })),
    );
    assert!(e.contains("loss probability"), "{e}");

    // Straggler host out of range / bad rate factor.
    let e = err(
        base().with_faults(FaultSpec::new().with_straggler(StragglerHost {
            host: 10_000,
            from: Duration::from_us(10),
            until: Duration::from_us(100),
            rate_factor: 0.5,
        })),
    );
    assert!(e.contains("out of range"), "{e}");
    let e = err(
        base().with_faults(FaultSpec::new().with_straggler(StragglerHost {
            host: 0,
            from: Duration::from_us(10),
            until: Duration::from_us(100),
            rate_factor: 0.0,
        })),
    );
    assert!(e.contains("rate_factor"), "{e}");
}

#[test]
fn fault_and_cc_specs_round_trip_through_scenario_json() {
    let topo = TopologyChoice::FatTree(FatTreeParams::small()).build();
    let link = first_fabric_link(&topo);
    let spec = ScenarioSpec::new(
        "faulty TIMELY",
        TopologyChoice::FatTree(FatTreeParams::small()),
        CcSpec::Timely {
            window: true,
            t_low: Duration::from_us(40),
            t_high: Duration::from_us(400),
            beta: 0.85,
            hai_threshold: 4,
        },
        Duration::from_ms(1),
    )
    .with_faults(
        FaultSpec::new()
            .with_link_fault(LinkFault {
                link,
                at: Duration::from_us(100),
                down_for: Duration::from_us(50),
                flaps: 2,
                period: Duration::from_us(200),
                mode: LinkDownMode::Drop,
            })
            .with_degraded_link(DegradedLink {
                link,
                from: Duration::from_us(800),
                until: Duration::from_us(900),
                extra_delay: Duration::from_us(2),
                loss: 0.01,
            })
            .with_straggler(StragglerHost {
                host: 3,
                from: Duration::from_us(100),
                until: Duration::from_us(600),
                rate_factor: 0.25,
            }),
    );
    let text = spec.to_json_string();
    assert!(text.contains("\"faults\""));
    let back = ScenarioSpec::from_json_str(&text).unwrap();
    assert_eq!(back, spec);
    assert_eq!(back.scheme_label(), "TIMELY+win");

    // DCTCP parameter sweeps survive the round trip too.
    let dctcp = ScenarioSpec::new(
        "dctcp g",
        TopologyChoice::star(4, hpcc_types::Bandwidth::from_gbps(25)),
        CcSpec::Dctcp { g: 0.25 },
        Duration::from_ms(1),
    );
    let back = ScenarioSpec::from_json_str(&dctcp.to_json_string()).unwrap();
    assert_eq!(back, dctcp);

    // A spec without faults omits the key entirely.
    let plain = fattree_reference().0;
    assert!(!plain.to_json_string().contains("\"faults\""));
}
