//! End-to-end tests of the `simlint` pass: each rule against positive and
//! negative fixtures, wire-drift against a doctored spec, the manifest
//! validator against broken manifests, and the clean-tree gate the CI job
//! relies on.

use hpcc_lint::determinism::{self, lint_rust_source};
use hpcc_lint::manifests::{check_corpus, check_manifest};
use hpcc_lint::wirecheck::check_wire_contract;
use hpcc_lint::{run, Allowlist, Finding, Section};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn lint(path: &str, source: &str) -> Vec<Finding> {
    lint_rust_source(path, source, &BTreeSet::new())
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_unsorted_fold() {
    let src = "fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
               let mut acc = 0;\n\
               for (k, v) in m.iter() {\n    acc ^= k.wrapping_mul(*v);\n}\n\
               acc\n}\n";
    let findings = lint("crates/sim/src/fake.rs", src);
    assert_eq!(
        rules(&findings),
        vec![determinism::HASH_ITER],
        "{findings:?}"
    );
    // Same source outside the deterministic crates: not in scope.
    assert!(lint("crates/bench/src/fake.rs", src).is_empty());
}

#[test]
fn hash_iter_accepts_sort_before_fold() {
    // The digest_output pattern: collect keys, sort, fold in sorted order.
    let src = "fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
               let mut keys: Vec<u64> = m.keys().copied().collect();\n\
               keys.sort_unstable();\n\
               keys.iter().map(|k| m[k]).fold(0, u64::wrapping_add)\n}\n";
    let findings = lint("crates/core/src/fake.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hash_iter_accepts_justified_annotation_and_rejects_bare_one() {
    let annotated = "fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
                     // simlint: sorted-fold — commutative sum, order-free\n\
                     m.values().sum()\n}\n";
    assert!(lint("crates/stats/src/fake.rs", annotated).is_empty());

    let bare = "fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
                // simlint: sorted-fold\n\
                m.values().sum()\n}\n";
    let findings = lint("crates/stats/src/fake.rs", bare);
    // The bare annotation is itself a finding and does not silence the site.
    assert!(
        rules(&findings).contains(&determinism::ANNOTATION),
        "{findings:?}"
    );
    assert!(
        rules(&findings).contains(&determinism::HASH_ITER),
        "{findings:?}"
    );
}

#[test]
fn hash_iter_resolves_registry_fields_with_local_shadowing() {
    let registry: BTreeSet<String> = ["ports".to_string()].into();
    // `self.out.ports` in a file that never declares `ports`: resolved via
    // the registry of pub hash-typed fields.
    let remote = "fn f(&self) -> u64 {\n    self.out.ports.values().map(|c| c.x).sum()\n}\n";
    let findings = lint_rust_source("crates/core/src/fake.rs", remote, &registry);
    assert_eq!(
        rules(&findings),
        vec![determinism::HASH_ITER],
        "{findings:?}"
    );

    // A local non-hash declaration of the same name shadows the registry.
    let local = "struct S { ports: Vec<u64> }\n\
                 fn f(s: &S) -> u64 {\n    s.ports.iter().sum()\n}\n";
    let findings = lint_rust_source("crates/core/src/fake.rs", local, &registry);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hash_iter_skips_test_modules_and_loop_style_is_caught() {
    let in_test = "#[cfg(test)]\nmod tests {\n\
                   fn f(m: &std::collections::HashMap<u64, u64>) -> u64 {\n\
                   m.values().sum()\n}\n}\n";
    assert!(lint("crates/sim/src/fake.rs", in_test).is_empty());

    let loop_style = "fn f(s: &std::collections::HashSet<u64>) -> u64 {\n\
                      let mut acc = 0;\n    for v in &s {\n        acc ^= v;\n    }\n    acc\n}\n";
    let findings = lint("crates/topology/src/fake.rs", loop_style);
    assert_eq!(
        rules(&findings),
        vec![determinism::HASH_ITER],
        "{findings:?}"
    );
}

// --------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_banned_outside_timing_modules() {
    let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
    let findings = lint("crates/sim/src/fake.rs", src);
    assert_eq!(
        rules(&findings),
        vec![determinism::WALL_CLOCK],
        "{findings:?}"
    );

    // The timing modules and the bench crate are exempt.
    assert!(lint("crates/core/src/campaign.rs", src).is_empty());
    assert!(lint("crates/core/src/validate.rs", src).is_empty());
    assert!(lint("crates/core/src/timing.rs", src).is_empty());
    assert!(lint("crates/bench/src/lat.rs", src).is_empty());

    let sys = "fn f() { let _ = SystemTime::now(); }\n";
    assert_eq!(
        rules(&lint("crates/core/src/wire.rs", sys)),
        vec![determinism::WALL_CLOCK]
    );
}

#[test]
fn wall_clock_fabric_must_route_through_timing_module() {
    // Negative fixture: a fabric that reads the clock directly is flagged —
    // fabric.rs is deliberately NOT on the wall-clock exemption list, so
    // liveness timing cannot creep in unfunneled.
    let direct = "fn lease_deadline() -> std::time::Instant {\n\
                  std::time::Instant::now() + std::time::Duration::from_secs(10)\n}\n";
    assert_eq!(
        rules(&lint("crates/core/src/fabric.rs", direct)),
        vec![determinism::WALL_CLOCK]
    );

    // Positive fixture: the committed idiom — route every clock read
    // through the sanctioned `timing` module and only do arithmetic on the
    // returned instants — lints clean, as does BTreeMap-based bookkeeping
    // (no hash-iter findings: worker/lease state must iterate in
    // deterministic order).
    let funneled = "use crate::timing;\n\
                    use std::collections::BTreeMap;\n\
                    fn silent(last: &BTreeMap<usize, std::time::Instant>) -> Vec<usize> {\n\
                    let mut out = Vec::new();\n\
                    for (w, heard) in last.iter() {\n\
                    if heard.elapsed() > std::time::Duration::from_secs(10) { out.push(*w); }\n\
                    }\n\
                    let _ = timing::now();\n\
                    out\n}\n";
    let findings = lint("crates/core/src/fabric.rs", funneled);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_parallel_engine_stays_clock_free() {
    // Negative fixture: a parallel engine that paces its window exchange on
    // the host clock is flagged — crates/sim is deliberately NOT on the
    // wall-clock exemption list, so the conservative-lookahead protocol
    // cannot degrade into wall-clock polling (which would make cross-shard
    // event order host-dependent).
    let polling = "fn drain_inbox(ch: &std::sync::Mutex<Vec<u64>>) -> Vec<u64> {\n\
                   let deadline = std::time::Instant::now() + std::time::Duration::from_millis(1);\n\
                   while std::time::Instant::now() < deadline {}\n\
                   ch.lock().unwrap().drain(..).collect()\n}\n";
    assert_eq!(
        rules(&lint("crates/sim/src/parallel.rs", polling)),
        vec![determinism::WALL_CLOCK, determinism::WALL_CLOCK]
    );

    // Positive fixture: the committed idiom — barrier-synchronised phases
    // and mutex-guarded channel drains with no clock reads at all — lints
    // clean. (Benchmark wall timing lives in crates/bench and the
    // `hpcc_core::timing` funnel, never in the engine.)
    let barriered = "fn drain_inbox(\n\
                     barrier: &std::sync::Barrier,\n\
                     ch: &std::sync::Mutex<Vec<u64>>,\n\
                     ) -> Vec<u64> {\n\
                     barrier.wait();\n\
                     let mut got: Vec<u64> = ch.lock().unwrap().drain(..).collect();\n\
                     got.sort_unstable();\n\
                     got\n}\n";
    let findings = lint("crates/sim/src/parallel.rs", barriered);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn hash_iter_shard_stat_merges_must_sort() {
    // Negative fixture: folding per-shard port-stat maps in HashMap order
    // is flagged — a parallel merge that iterates raw hash order would make
    // the merged output depend on hasher state.
    let unsorted = "fn merge(shard: &std::collections::HashMap<u64, u64>) \
                    -> std::collections::HashMap<u64, u64> {\n\
                    let mut out = std::collections::HashMap::new();\n\
                    for (k, v) in shard.iter() {\n    out.insert(*k, *v);\n}\n\
                    out\n}\n";
    let findings = lint("crates/sim/src/parallel.rs", unsorted);
    assert_eq!(
        rules(&findings),
        vec![determinism::HASH_ITER],
        "{findings:?}"
    );

    // Positive fixture: the committed merge idiom — collect the shard's
    // disjoint keys, sort, then insert in sorted order — lints clean.
    let sorted = "fn merge(shard: std::collections::HashMap<u64, u64>) \
                  -> std::collections::HashMap<u64, u64> {\n\
                  let mut rows: Vec<(u64, u64)> = shard.into_iter().collect();\n\
                  rows.sort_unstable();\n\
                  let mut out = std::collections::HashMap::new();\n\
                  for (k, v) in rows {\n    out.insert(k, v);\n}\n\
                  out\n}\n";
    let findings = lint("crates/sim/src/parallel.rs", sorted);
    assert!(findings.is_empty(), "{findings:?}");
}

// ----------------------------------------------------------------- wire-fmt

#[test]
fn wire_fmt_flags_debug_and_precision_formatting() {
    let debug = "fn f(x: f64) -> String {\n    format!(\"{x:?}\")\n}\n";
    assert_eq!(
        rules(&lint("crates/core/src/wire.rs", debug)),
        vec![determinism::WIRE_FMT]
    );

    let precision = "fn f(x: f64) -> String {\n    format!(\"{x:.3}\")\n}\n";
    assert_eq!(
        rules(&lint("crates/core/src/json.rs", precision)),
        vec![determinism::WIRE_FMT]
    );

    // Canonical shortest-round-trip formatting is fine; other files are out
    // of scope.
    let clean = "fn f(x: f64) -> String {\n    format!(\"{x}\")\n}\n";
    assert!(lint("crates/core/src/wire.rs", clean).is_empty());
    assert!(lint("crates/core/src/campaign.rs", debug).is_empty());
}

#[test]
fn wire_fmt_exempts_error_construction() {
    let src = "fn f(x: f64) -> Result<(), JsonError> {\n\
               Err(JsonError::new(format!(\"bad float {x:?}\")))\n}\n";
    assert!(lint("crates/core/src/json.rs", src).is_empty());
}

// ------------------------------------------------- forbid-unsafe/crate-docs

#[test]
fn crate_roots_need_forbid_unsafe_and_docs() {
    let bare = "pub fn f() {}\n";
    let findings = lint("crates/sim/src/lib.rs", bare);
    assert!(
        rules(&findings).contains(&determinism::FORBID_UNSAFE),
        "{findings:?}"
    );
    assert!(
        rules(&findings).contains(&determinism::CRATE_DOCS),
        "{findings:?}"
    );

    let good = "//! Crate docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(lint("crates/sim/src/lib.rs", good).is_empty());
    // Non-root modules are not subject to the crate-root rules.
    assert!(lint("crates/sim/src/engine.rs", bare).is_empty());
}

// --------------------------------------------------------------- annotation

#[test]
fn malformed_annotations_are_findings() {
    let src = "// simlint: sortedfold — typo in the directive\nfn f() {}\n";
    let findings = lint("crates/sim/src/fake.rs", src);
    assert_eq!(
        rules(&findings),
        vec![determinism::ANNOTATION],
        "{findings:?}"
    );
}

// --------------------------------------------------------------- wire-drift

#[test]
fn wire_drift_detects_doctored_doc() {
    let root = repo_root();
    let source = std::fs::read_to_string(root.join("crates/core/src/wire.rs")).unwrap();
    let doc = std::fs::read_to_string(root.join("docs/WIRE.md")).unwrap();

    // The committed pair is drift-free.
    assert!(check_wire_contract("wire.rs", &source, "WIRE.md", &doc).is_empty());

    // Remove a documented key: the encoder key becomes undocumented.
    let doctored = doc.replace("| `digest` |", "| `checksum` |");
    let findings = check_wire_contract("wire.rs", &source, "WIRE.md", &doctored);
    assert!(
        findings
            .iter()
            .any(|f| f.file == "wire.rs" && f.message.contains("\"digest\"")),
        "{findings:?}"
    );
    // … and the renamed doc key has no implementation.
    assert!(
        findings
            .iter()
            .any(|f| f.file == "WIRE.md" && f.message.contains("\"checksum\"")),
        "{findings:?}"
    );
}

// ----------------------------------------------------- manifests and corpus

#[test]
fn manifest_validator_catches_breakage() {
    let root = repo_root();
    let path = root.join("manifests/queueing_smoke.json");
    let text = std::fs::read_to_string(&path).unwrap();

    // The committed manifest is clean.
    assert!(check_manifest("manifests/queueing_smoke.json", &text, &root).is_empty());

    // Whitespace-only edits break the canonical fixed point.
    let pretty = text.replace("\",\"", "\", \"");
    let findings = check_manifest("m.json", &pretty, &root);
    assert!(
        findings.iter().any(|f| f.message.contains("fixed point")),
        "{findings:?}"
    );

    // Garbage does not parse.
    let findings = check_manifest("m.json", "not json", &root);
    assert_eq!(rules(&findings), vec![hpcc_lint::manifests::MANIFEST]);

    // A parseable campaign whose scenario cannot build (zero-host star).
    let broken = text.replace("\"pods\":2", "\"pods\":0");
    let findings = check_manifest("m.json", &broken, &root);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("fails to build")),
        "{findings:?}"
    );
}

#[test]
fn corpus_validator_catches_breakage() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("corpus/abilene.edges")).unwrap();
    assert!(check_corpus("corpus/abilene.edges", &text).is_empty());

    let findings = check_corpus("bad.edges", "this is not an edge list {");
    assert_eq!(
        rules(&findings),
        vec![hpcc_lint::manifests::CORPUS],
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- allowlist

#[test]
fn allowlist_suppresses_and_reports_stale_entries() {
    let (allow, parse_findings) = Allowlist::parse(
        "simlint.allow",
        "# comment\ncrates/sim/src/fake.rs hash-iter  # vetted\ncrates/x.rs wall-clock\n",
    );
    assert!(parse_findings.is_empty());
    let findings = vec![Finding::new("crates/sim/src/fake.rs", 3, "hash-iter", "m")];
    let kept = allow.apply("simlint.allow", findings);
    // The matching finding is suppressed; the unmatched entry is stale.
    assert_eq!(rules(&kept), vec!["allowlist"], "{kept:?}");
    assert!(kept[0].message.contains("stale"), "{kept:?}");

    let (_, parse_findings) = Allowlist::parse("simlint.allow", "one-token-line\n");
    assert_eq!(rules(&parse_findings), vec!["allowlist"]);
}

// --------------------------------------------------------------- clean tree

#[test]
fn committed_tree_lints_clean() {
    let findings = run(&repo_root(), Section::All).expect("simlint run");
    assert!(
        findings.is_empty(),
        "the committed tree must lint clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ------------------------------------------------------------------ the CLI

#[test]
fn simlint_binary_exit_codes() {
    // Clean tree → exit 0.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(repo_root())
        .arg("all")
        .output()
        .expect("spawn simlint");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A doctored tree → exit 1 with `file:line rule message` findings.
    let dir = std::env::temp_dir().join(format!("simlint-test-{}", std::process::id()));
    let src = dir.join("crates/foo/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root"])
        .arg(&dir)
        .arg("rust")
        .output()
        .expect("spawn simlint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/foo/src/lib.rs:1 forbid-unsafe"),
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Unknown arguments → exit 2.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simlint"))
        .arg("--bogus")
        .output()
        .expect("spawn simlint");
    assert_eq!(out.status.code(), Some(2));
}
