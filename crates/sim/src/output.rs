//! Raw measurement records produced by a simulation run.
//!
//! `hpcc-stats` turns these into the derived metrics the paper reports (FCT
//! slowdown percentiles, queue-length CDFs, PFC pause fractions, …); this
//! module only collects.

use hpcc_types::{Duration, FlowId, NodeId, PortId, SimTime};
use std::collections::HashMap;

/// Identifies one egress port of one node.
pub type PortKey = (NodeId, PortId);

/// Completion record of one flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowRecord {
    /// Flow identifier.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size: u64,
    /// Time the sender learned about the flow.
    pub start: SimTime,
    /// Time the sender received the acknowledgement of the last byte.
    pub finish: SimTime,
    /// The flow's application priority as its wire code
    /// ([`hpcc_types::FlowPriority::wire_code`]; 0 = normal) — the key of
    /// the per-priority FCT breakdowns.
    pub prio: u8,
}

impl FlowRecord {
    /// Flow completion time.
    pub fn fct(&self) -> Duration {
        self.finish.saturating_since(self.start)
    }
}

/// Per-egress-port counters accumulated over the run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PortCounters {
    /// Total bytes transmitted.
    pub tx_bytes: u64,
    /// Total data bytes dropped at enqueue (lossy modes).
    pub dropped_bytes: u64,
    /// Number of dropped data packets.
    pub dropped_packets: u64,
    /// Number of packets ECN-marked at this egress.
    pub ecn_marked: u64,
    /// Total time the data class of this egress was paused by PFC.
    pub pause_duration: Duration,
    /// Number of pause periods observed.
    pub pause_events: u64,
    /// Number of PFC pause frames this node sent *from* this port.
    pub pause_frames_sent: u64,
    /// Maximum data-queue occupancy seen at this egress.
    pub max_queue_bytes: u64,
}

/// A single PFC pause-frame emission (used to reconstruct propagation depth,
/// Figure 1a).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PfcEvent {
    /// When the pause frame was sent.
    pub time: SimTime,
    /// Switch that sent it.
    pub node: NodeId,
    /// Port it was sent from (towards the upstream sender).
    pub port: PortId,
}

/// Raw output of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimOutput {
    /// Completed flows.
    pub flows: Vec<FlowRecord>,
    /// Flows that did not finish before the horizon (size and bytes acked).
    pub unfinished_flows: usize,
    /// Per-port counters.
    pub ports: HashMap<PortKey, PortCounters>,
    /// Histogram of sampled data-queue lengths across all switch egress
    /// ports, in `queue_histogram_bin` byte bins (total across data
    /// classes, so single-class runs are unchanged by the class dimension).
    pub queue_histogram: Vec<u64>,
    /// Bin width of `queue_histogram` in bytes.
    pub queue_histogram_bin: u64,
    /// Per-data-class queue histograms (same sampling instants and bin
    /// width as `queue_histogram`), one per configured data class. Empty on
    /// the legacy single-class path, so pre-existing outputs and digests
    /// are untouched.
    pub class_queue_histograms: Vec<Vec<u64>>,
    /// Time series of traced ports: `(port, samples of (time, qlen bytes))`.
    pub port_traces: HashMap<PortKey, Vec<(SimTime, u64)>>,
    /// Per-flow goodput series: bytes newly acknowledged in each bin.
    pub flow_goodput: HashMap<FlowId, Vec<u64>>,
    /// Bin width of `flow_goodput`.
    pub flow_goodput_bin: Duration,
    /// Every PFC pause frame emitted (bounded; see `pfc_events_truncated`).
    pub pfc_events: Vec<PfcEvent>,
    /// True if `pfc_events` hit its cap and later events were not recorded.
    pub pfc_events_truncated: bool,
    /// Total simulated time actually executed.
    pub elapsed: SimTime,
    /// Number of events processed by the engine.
    pub events_processed: u64,
    /// Largest number of simultaneously pending events in the event queue
    /// (engine health metric; excluded from campaign digests).
    pub peak_event_queue: u64,
    /// Total data packets delivered to receivers.
    pub packets_delivered: u64,
    /// Total data packets sent by hosts (including retransmissions).
    pub packets_sent: u64,
    /// Number of fault-timeline transitions applied during the run. Zero on
    /// fault-free runs (and then none of the fault fields below fold into
    /// campaign digests).
    pub fault_events: u64,
    /// Administratively-down time per faulted link, `(link index, downtime)`
    /// in link-index order. Empty on fault-free runs.
    pub link_downtime: Vec<(usize, Duration)>,
    /// Wire bytes lost to fault injection: frames serialized onto a down
    /// link in drop mode plus iid losses on degraded links.
    pub fault_dropped_bytes: u64,
    /// Packets lost to fault injection (same sources as
    /// `fault_dropped_bytes`).
    pub fault_dropped_packets: u64,
    /// Bytes newly acknowledged while at least one fault window (outage,
    /// degradation or straggle) was active.
    pub goodput_during_faults: u64,
    /// Total administratively-down time of host NIC links, summed over
    /// hosts — the time excluded from the `utilization_while_up`
    /// denominator.
    pub host_nic_downtime: Duration,
}

impl SimOutput {
    pub(crate) const PFC_EVENT_CAP: usize = 200_000;

    /// Create an empty output with the given queue-histogram bin width.
    pub fn new(queue_histogram_bin: u64, flow_goodput_bin: Duration) -> Self {
        SimOutput {
            queue_histogram_bin,
            flow_goodput_bin,
            ..Default::default()
        }
    }

    /// Record one sampled queue length into the histogram.
    pub(crate) fn record_queue_sample(&mut self, qlen_bytes: u64) {
        let bin = (qlen_bytes / self.queue_histogram_bin.max(1)) as usize;
        if self.queue_histogram.len() <= bin {
            self.queue_histogram.resize(bin + 1, 0);
        }
        self.queue_histogram[bin] += 1;
    }

    /// Record one sampled per-class queue length (multi-class runs only;
    /// `class_queue_histograms` must have been sized by the simulator).
    pub(crate) fn record_class_queue_sample(&mut self, class: usize, qlen_bytes: u64) {
        let bin = (qlen_bytes / self.queue_histogram_bin.max(1)) as usize;
        let hist = &mut self.class_queue_histograms[class];
        if hist.len() <= bin {
            hist.resize(bin + 1, 0);
        }
        hist[bin] += 1;
    }

    /// Record a PFC pause-frame emission (bounded).
    pub(crate) fn record_pfc_event(&mut self, ev: PfcEvent) {
        if self.pfc_events.len() < Self::PFC_EVENT_CAP {
            self.pfc_events.push(ev);
        } else {
            self.pfc_events_truncated = true;
        }
    }

    /// Record newly acknowledged bytes of a flow at `now` into its goodput
    /// series.
    pub(crate) fn record_goodput(&mut self, flow: FlowId, now: SimTime, bytes: u64) {
        if self.flow_goodput_bin.is_zero() {
            return;
        }
        let bin = (now.as_ps() / self.flow_goodput_bin.as_ps()) as usize;
        let series = self.flow_goodput.entry(flow).or_default();
        if series.len() <= bin {
            series.resize(bin + 1, 0);
        }
        series[bin] += bytes;
    }

    /// Aggregate PFC pause duration across all ports.
    pub fn total_pause_duration(&self) -> Duration {
        let mut total = Duration::ZERO;
        // simlint: sorted-fold — commutative Duration sum; port order cannot leak.
        for c in self.ports.values() {
            total += c.pause_duration;
        }
        total
    }

    /// Total dropped data packets across all ports.
    pub fn total_drops(&self) -> u64 {
        // simlint: sorted-fold — commutative u64 sum; port order cannot leak.
        self.ports.values().map(|c| c.dropped_packets).sum()
    }

    /// Largest data-queue occupancy seen anywhere.
    pub fn max_queue_bytes(&self) -> u64 {
        self.ports
            .values() // simlint: sorted-fold — commutative max; port order cannot leak
            .map(|c| c.max_queue_bytes)
            .max()
            .unwrap_or(0)
    }

    /// The queue-length value at a given percentile of the sampled histogram
    /// (`p` in `[0, 100]`). Returns `None` when no samples were taken.
    pub fn queue_percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.queue_histogram.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (p / 100.0 * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &count) in self.queue_histogram.iter().enumerate() {
            acc += count;
            if acc >= target.max(1) {
                return Some(i as u64 * self.queue_histogram_bin);
            }
        }
        // Out-of-range percentile (p > 100 after rounding): report the last
        // *occupied* bin, not the histogram's trailing edge — trailing empty
        // bins must not inflate the maximum (see hpcc_stats::queue).
        let last = self
            .queue_histogram
            .iter()
            .rposition(|&c| c != 0)
            .unwrap_or(0);
        Some(last as u64 * self.queue_histogram_bin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_is_finish_minus_start() {
        let r = FlowRecord {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size: 1_000_000,
            start: SimTime::from_us(10),
            finish: SimTime::from_us(110),
            prio: 0,
        };
        assert_eq!(r.fct(), Duration::from_us(100));
    }

    #[test]
    fn queue_histogram_and_percentiles() {
        let mut out = SimOutput::new(1000, Duration::ZERO);
        // 90 samples of an empty queue, 10 samples of a 10 KB queue.
        for _ in 0..90 {
            out.record_queue_sample(0);
        }
        for _ in 0..10 {
            out.record_queue_sample(10_000);
        }
        assert_eq!(out.queue_percentile(50.0), Some(0));
        assert_eq!(out.queue_percentile(95.0), Some(10_000));
        assert_eq!(out.queue_percentile(100.0), Some(10_000));
        assert!(SimOutput::default().queue_percentile(50.0).is_none());
    }

    #[test]
    fn goodput_series_bins_by_time() {
        let mut out = SimOutput::new(1000, Duration::from_us(100));
        out.record_goodput(FlowId(3), SimTime::from_us(50), 1000);
        out.record_goodput(FlowId(3), SimTime::from_us(70), 500);
        out.record_goodput(FlowId(3), SimTime::from_us(250), 2000);
        let series = &out.flow_goodput[&FlowId(3)];
        assert_eq!(series[0], 1500);
        assert_eq!(series[1], 0);
        assert_eq!(series[2], 2000);
    }

    #[test]
    fn pfc_event_cap_sets_truncation_flag() {
        let mut out = SimOutput::new(1000, Duration::ZERO);
        for i in 0..(SimOutput::PFC_EVENT_CAP + 10) {
            out.record_pfc_event(PfcEvent {
                time: SimTime::from_ns(i as u64),
                node: NodeId(1),
                port: PortId(0),
            });
        }
        assert_eq!(out.pfc_events.len(), SimOutput::PFC_EVENT_CAP);
        assert!(out.pfc_events_truncated);
    }

    #[test]
    fn aggregates_over_ports() {
        let mut out = SimOutput::new(1000, Duration::ZERO);
        out.ports.insert(
            (NodeId(1), PortId(0)),
            PortCounters {
                pause_duration: Duration::from_us(5),
                dropped_packets: 2,
                max_queue_bytes: 7000,
                ..Default::default()
            },
        );
        out.ports.insert(
            (NodeId(2), PortId(1)),
            PortCounters {
                pause_duration: Duration::from_us(3),
                dropped_packets: 1,
                max_queue_bytes: 9000,
                ..Default::default()
            },
        );
        assert_eq!(out.total_pause_duration(), Duration::from_us(8));
        assert_eq!(out.total_drops(), 3);
        assert_eq!(out.max_queue_bytes(), 9000);
    }
}
