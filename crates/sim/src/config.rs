//! Simulation configuration: everything about host and switch behaviour that
//! is not part of the topology or the workload.

use hpcc_cc::CcAlgorithm;
use hpcc_types::{Bandwidth, Duration, FlowPriority, NodeId, PortId, Priority, SimTime};

/// How losses are prevented or recovered (§5.3, Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlowControlMode {
    /// Lossless fabric: PFC enabled, go-back-N as the (rarely exercised)
    /// recovery mechanism. This is the paper's default deployment model.
    #[default]
    Lossless,
    /// Lossy fabric: no PFC, switches drop on buffer pressure, go-back-N
    /// retransmission from the first lost byte.
    LossyGoBackN,
    /// Lossy fabric with IRN-style selective retransmission: the receiver
    /// keeps out-of-order data and NACKs only the missing range.
    LossyIrn,
}

impl FlowControlMode {
    /// Whether switches generate PFC pause frames.
    pub fn pfc_enabled(self) -> bool {
        matches!(self, FlowControlMode::Lossless)
    }
    /// Whether the receiver keeps out-of-order data (selective repeat).
    pub fn selective_repeat(self) -> bool {
        matches!(self, FlowControlMode::LossyIrn)
    }
    /// Whether switches may drop data packets under buffer pressure.
    pub fn lossy(self) -> bool {
        !self.pfc_enabled()
    }
    /// Display label used in figures ("PFC", "GBN", "IRN").
    pub fn label(self) -> &'static str {
        match self {
            FlowControlMode::Lossless => "PFC",
            FlowControlMode::LossyGoBackN => "GBN",
            FlowControlMode::LossyIrn => "IRN",
        }
    }
}

/// WRED/ECN marking thresholds of the switch egress queues (the `Kmin`,
/// `Kmax`, `Pmax` of DCQCN / DCTCP; Figure 3 sweeps these).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EcnConfig {
    /// Queue length below which nothing is marked.
    pub kmin_bytes: u64,
    /// Queue length above which every packet is marked.
    pub kmax_bytes: u64,
    /// Marking probability at `kmax`.
    pub pmax: f64,
}

impl EcnConfig {
    /// The DCQCN setting used in §5.1, scaled with the line rate:
    /// `Kmin = 100 KB × B/25G`, `Kmax = 400 KB × B/25G`, `Pmax = 0.2`.
    pub fn dcqcn_default(line_rate: Bandwidth) -> Self {
        let scale = line_rate.as_bps() as f64 / 25e9;
        EcnConfig {
            kmin_bytes: (100_000.0 * scale) as u64,
            kmax_bytes: (400_000.0 * scale) as u64,
            pmax: 0.2,
        }
    }

    /// The DCTCP setting used in §5.1: `Kmin = Kmax = 30 KB × B/10G`
    /// (step marking).
    pub fn dctcp_default(line_rate: Bandwidth) -> Self {
        let scale = line_rate.as_bps() as f64 / 10e9;
        EcnConfig {
            kmin_bytes: (30_000.0 * scale) as u64,
            kmax_bytes: (30_000.0 * scale) as u64,
            pmax: 1.0,
        }
    }

    /// An explicit threshold pair in kilobytes (Figure 3 sweeps).
    pub fn thresholds_kb(kmin_kb: u64, kmax_kb: u64) -> Self {
        EcnConfig {
            kmin_bytes: kmin_kb * 1000,
            kmax_bytes: kmax_kb * 1000,
            pmax: 0.2,
        }
    }
}

/// Which algorithm arbitrates among the data classes of one switch egress
/// port. The control class is outside the scheduler: it is always served
/// first (the paper's never-pause, never-drop invariant for ACK/NACK/CNP).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Strict priority: the lowest-numbered non-empty, non-paused data class
    /// always transmits. With one data class this is the paper's FIFO.
    #[default]
    StrictPriority,
    /// Deficit-weighted round robin over the data classes, one weight per
    /// class (see [`QueueingConfig::weights`]).
    Dwrr,
}

/// Multi-class queueing configuration of every switch egress (and of the
/// host-side packet tagging that feeds it).
///
/// The default — one data class under strict priority, no PIAS thresholds,
/// no per-class ECN scaling — reproduces the paper's two-class deployment
/// bit for bit; every knob here only takes effect when it departs from that
/// default.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueingConfig {
    /// Number of data classes per egress port (`1..=MAX_DATA_CLASSES`).
    pub data_classes: u8,
    /// How the data classes share the egress link.
    pub scheduler: SchedulerKind,
    /// DWRR weights, one per data class (ignored under strict priority;
    /// empty means equal weights).
    pub weights: Vec<u32>,
    /// PIAS-style demotion thresholds in bytes, strictly increasing, one
    /// fewer than `data_classes`. When non-empty, senders tag each data
    /// packet by the bytes the flow has already sent: a packet starting at
    /// byte `seq` travels in class `#{t : t <= seq}` — new flows start in
    /// the top class and are demoted as they grow, approximating
    /// shortest-job-first without size information. Empty = static tagging
    /// by [`FlowPriority::initial_class`].
    pub pias_thresholds: Vec<u64>,
    /// Per-class multipliers applied to the base ECN thresholds
    /// (`kmin`/`kmax`), one per data class. Empty = all classes use the base
    /// thresholds unchanged.
    pub ecn_scale: Vec<f64>,
}

impl Default for QueueingConfig {
    fn default() -> Self {
        QueueingConfig::legacy()
    }
}

impl QueueingConfig {
    /// The paper's deployment: a single data class under strict priority.
    pub fn legacy() -> Self {
        QueueingConfig {
            data_classes: 1,
            scheduler: SchedulerKind::StrictPriority,
            weights: Vec::new(),
            pias_thresholds: Vec::new(),
            ecn_scale: Vec::new(),
        }
    }

    /// True when this configuration is behaviourally the legacy single-class
    /// path.
    pub fn is_legacy(&self) -> bool {
        self.data_classes == 1 && self.pias_thresholds.is_empty()
    }

    /// The data class a sender stamps on the packet of `prio`'s flow whose
    /// first payload byte is `seq`: PIAS bytes-sent demotion when thresholds
    /// are configured, the static [`FlowPriority::initial_class`] mapping
    /// otherwise.
    #[inline]
    pub fn tag_class(&self, prio: FlowPriority, seq: u64) -> u8 {
        if self.pias_thresholds.is_empty() {
            prio.initial_class(self.data_classes)
        } else {
            let demotions = self
                .pias_thresholds
                .iter()
                .take_while(|&&t| seq >= t)
                .count() as u8;
            demotions.min(self.data_classes - 1)
        }
    }

    /// The DWRR weight of a data class (1 when unspecified).
    pub fn weight(&self, class: u8) -> u32 {
        self.weights
            .get(class as usize)
            .copied()
            .unwrap_or(1)
            .max(1)
    }

    /// The ECN thresholds of one data class: the base config scaled by this
    /// class's `ecn_scale` entry (identity when no scaling is configured).
    #[inline]
    pub fn class_ecn(&self, base: &EcnConfig, class: u8) -> EcnConfig {
        match self.ecn_scale.get(class as usize) {
            None => *base,
            Some(&s) => EcnConfig {
                kmin_bytes: (base.kmin_bytes as f64 * s) as u64,
                kmax_bytes: (base.kmax_bytes as f64 * s) as u64,
                pmax: base.pmax,
            },
        }
    }

    /// Validate the invariants documented on the fields; returns a
    /// human-readable reason on failure. Scenario resolution calls this so
    /// malformed manifests surface as typed errors, never as panics in the
    /// hot path.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.data_classes as usize;
        if n == 0 || n > Priority::MAX_DATA_CLASSES {
            return Err(format!(
                "data_classes must be in 1..={}, got {n}",
                Priority::MAX_DATA_CLASSES
            ));
        }
        if !self.weights.is_empty() && self.weights.len() != n {
            return Err(format!(
                "weights has {} entries for {n} data classes",
                self.weights.len()
            ));
        }
        if self.weights.contains(&0) {
            return Err("DWRR weights must be >= 1".into());
        }
        if !self.pias_thresholds.is_empty() {
            if self.pias_thresholds.len() != n - 1 {
                return Err(format!(
                    "PIAS needs data_classes - 1 = {} thresholds, got {}",
                    n - 1,
                    self.pias_thresholds.len()
                ));
            }
            if !self.pias_thresholds.windows(2).all(|w| w[0] < w[1]) {
                return Err("PIAS thresholds must be strictly increasing".into());
            }
        }
        if !self.ecn_scale.is_empty() {
            if self.ecn_scale.len() != n {
                return Err(format!(
                    "ecn_scale has {} entries for {n} data classes",
                    self.ecn_scale.len()
                ));
            }
            if self.ecn_scale.iter().any(|s| !s.is_finite() || *s <= 0.0) {
                return Err("ecn_scale entries must be positive and finite".into());
            }
        }
        Ok(())
    }
}

/// Full behavioural configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Congestion-control algorithm every host runs.
    pub cc: CcAlgorithm,
    /// MTU payload carried per data packet (the paper uses 1 KB packets).
    pub mtu_payload: u64,
    /// Whether switches stamp INT and data packets reserve the 42-byte INT
    /// budget (§5.1 accounts this overhead explicitly).
    pub int_enabled: bool,
    /// Base RTT `T` given to the congestion-control algorithms (set slightly
    /// above the topology's maximum base RTT, as in §5.1).
    pub base_rtt: Duration,
    /// Loss prevention / recovery mode.
    pub flow_control: FlowControlMode,
    /// Shared buffer per switch in bytes (32 MB in §5.1).
    pub buffer_bytes: u64,
    /// PFC pause threshold as a fraction of the free buffer (the paper pauses
    /// "when an ingress queue consumes more than 11% of the free buffer").
    pub pfc_threshold_fraction: f64,
    /// Hysteresis subtracted from the pause threshold before a resume frame
    /// is sent, in bytes.
    pub pfc_resume_hysteresis: u64,
    /// ECN marking configuration (`None` disables marking).
    pub ecn: Option<EcnConfig>,
    /// Whether receivers generate DCQCN CNPs on ECN-marked arrivals.
    pub cnp_enabled: bool,
    /// Minimum gap between CNPs of one flow (50 µs in the DCQCN NP spec).
    pub cnp_interval: Duration,
    /// Data packets acknowledged per ACK (1 = per-packet ACK, the default).
    pub ack_interval: u64,
    /// Minimum gap between go-back-N NACKs generated by a receiver.
    pub nack_interval: Duration,
    /// Retransmission timeout for lossy modes.
    pub rto: Duration,
    /// Simulation horizon: events after this time are not processed.
    pub end_time: SimTime,
    /// Seed for the deterministic per-switch RNG (ECN marking).
    pub seed: u64,
    /// If set, all switch data queues are sampled into a histogram at this
    /// period (used for the queue-length CDFs of Figures 9/10).
    pub queue_sample_interval: Option<Duration>,
    /// Egress ports whose data queue length is traced as a time series
    /// (Figures 6, 13, 14).
    pub trace_ports: Vec<(NodeId, PortId)>,
    /// Sampling period of the traced ports.
    pub trace_interval: Duration,
    /// If set, per-flow goodput is accumulated into bins of this width
    /// (Figures 9a–9d, 13a, 14a).
    pub flow_throughput_bin: Option<Duration>,
    /// Multi-class queueing: data-class count, egress scheduler, PIAS
    /// tagging thresholds and per-class ECN scaling. The default reproduces
    /// the paper's single-data-class deployment bit for bit.
    pub queueing: QueueingConfig,
    /// Fault-injection plan: scheduled link outages/flaps, degraded links
    /// and straggler hosts (see [`crate::fault`]). `None` (the default)
    /// allocates no fault timeline and reproduces the healthy-network run
    /// bit for bit.
    pub faults: Option<crate::fault::FaultConfig>,
}

impl SimConfig {
    /// A configuration with sensible paper defaults for the given congestion
    /// control algorithm, host line rate and base RTT. ECN / CNP / INT are
    /// enabled according to what the algorithm needs.
    pub fn for_cc(cc: CcAlgorithm, line_rate: Bandwidth, base_rtt: Duration) -> Self {
        let ecn = if cc.needs_ecn() {
            Some(match cc {
                CcAlgorithm::Dctcp(_) => EcnConfig::dctcp_default(line_rate),
                _ => EcnConfig::dcqcn_default(line_rate),
            })
        } else {
            None
        };
        SimConfig {
            int_enabled: cc.needs_int(),
            cnp_enabled: cc.needs_cnp(),
            cc,
            mtu_payload: 1000,
            base_rtt,
            flow_control: FlowControlMode::Lossless,
            buffer_bytes: 32_000_000,
            pfc_threshold_fraction: 0.11,
            pfc_resume_hysteresis: 2 * 1064,
            ecn,
            cnp_interval: Duration::from_us(50),
            ack_interval: 1,
            nack_interval: base_rtt,
            rto: base_rtt * 64,
            end_time: SimTime::from_ms(50),
            seed: 1,
            queue_sample_interval: None,
            trace_ports: Vec::new(),
            trace_interval: Duration::from_us(1),
            flow_throughput_bin: None,
            queueing: QueueingConfig::legacy(),
            faults: None,
        }
    }

    /// Wire size of a full data packet under this configuration.
    pub fn data_wire_size(&self) -> u64 {
        use hpcc_types::{DATA_HEADER_SIZE, INT_HOP_SIZE};
        let int = if self.int_enabled {
            2 + 5 * INT_HOP_SIZE
        } else {
            0
        };
        DATA_HEADER_SIZE + int + self.mtu_payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_cc::{DcqcnConfig, DctcpConfig};

    const LINE: Bandwidth = Bandwidth::from_gbps(100);
    const RTT: Duration = Duration::from_us(13);

    #[test]
    fn flow_control_modes() {
        assert!(FlowControlMode::Lossless.pfc_enabled());
        assert!(!FlowControlMode::Lossless.lossy());
        assert!(FlowControlMode::LossyGoBackN.lossy());
        assert!(!FlowControlMode::LossyGoBackN.selective_repeat());
        assert!(FlowControlMode::LossyIrn.selective_repeat());
        assert_eq!(FlowControlMode::Lossless.label(), "PFC");
        assert_eq!(FlowControlMode::LossyGoBackN.label(), "GBN");
        assert_eq!(FlowControlMode::LossyIrn.label(), "IRN");
    }

    #[test]
    fn ecn_defaults_scale_with_line_rate() {
        let d = EcnConfig::dcqcn_default(LINE);
        assert_eq!(d.kmin_bytes, 400_000);
        assert_eq!(d.kmax_bytes, 1_600_000);
        let d25 = EcnConfig::dcqcn_default(Bandwidth::from_gbps(25));
        assert_eq!(d25.kmin_bytes, 100_000);
        let t = EcnConfig::dctcp_default(Bandwidth::from_gbps(10));
        assert_eq!(t.kmin_bytes, 30_000);
        assert_eq!(t.kmin_bytes, t.kmax_bytes);
        let s = EcnConfig::thresholds_kb(12, 50);
        assert_eq!((s.kmin_bytes, s.kmax_bytes), (12_000, 50_000));
    }

    #[test]
    fn for_cc_enables_the_right_features() {
        let hpcc = SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, RTT);
        assert!(hpcc.int_enabled);
        assert!(hpcc.ecn.is_none());
        assert!(!hpcc.cnp_enabled);

        let dcqcn = SimConfig::for_cc(
            CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)),
            LINE,
            RTT,
        );
        assert!(!dcqcn.int_enabled);
        assert!(dcqcn.cnp_enabled);
        assert_eq!(dcqcn.ecn.unwrap().kmin_bytes, 400_000);

        let dctcp = SimConfig::for_cc(CcAlgorithm::Dctcp(DctcpConfig::default()), LINE, RTT);
        assert_eq!(dctcp.ecn.unwrap().kmin_bytes, 300_000);
        assert!(!dctcp.cnp_enabled);
    }

    #[test]
    fn queueing_legacy_tags_everything_into_class_zero() {
        let q = QueueingConfig::legacy();
        assert!(q.is_legacy());
        q.validate().unwrap();
        for prio in [
            FlowPriority::Normal,
            FlowPriority::LatencySensitive,
            FlowPriority::Class(3),
        ] {
            for seq in [0, 1_000_000] {
                assert_eq!(q.tag_class(prio, seq), 0);
            }
        }
        // No ECN scaling: thresholds pass through untouched.
        let base = EcnConfig::thresholds_kb(12, 50);
        assert_eq!(q.class_ecn(&base, 0), base);
    }

    #[test]
    fn pias_tagging_demotes_by_bytes_sent() {
        let q = QueueingConfig {
            data_classes: 3,
            pias_thresholds: vec![100_000, 1_000_000],
            ..QueueingConfig::legacy()
        };
        q.validate().unwrap();
        assert!(!q.is_legacy());
        // Tag ignores the static priority: PIAS is purely bytes-sent.
        for prio in [FlowPriority::Normal, FlowPriority::LatencySensitive] {
            assert_eq!(q.tag_class(prio, 0), 0);
            assert_eq!(q.tag_class(prio, 99_999), 0);
            assert_eq!(q.tag_class(prio, 100_000), 1);
            assert_eq!(q.tag_class(prio, 999_999), 1);
            assert_eq!(q.tag_class(prio, 1_000_000), 2);
            assert_eq!(q.tag_class(prio, u64::MAX), 2);
        }
    }

    #[test]
    fn queueing_validation_rejects_malformed_configs() {
        let base = QueueingConfig::legacy();
        let cases = vec![
            (
                QueueingConfig {
                    data_classes: 0,
                    ..base.clone()
                },
                "data_classes",
            ),
            (
                QueueingConfig {
                    data_classes: 9,
                    ..base.clone()
                },
                "data_classes",
            ),
            (
                QueueingConfig {
                    data_classes: 2,
                    weights: vec![1, 2, 3],
                    ..base.clone()
                },
                "weights",
            ),
            (
                QueueingConfig {
                    data_classes: 2,
                    weights: vec![0, 1],
                    ..base.clone()
                },
                ">= 1",
            ),
            (
                QueueingConfig {
                    data_classes: 3,
                    pias_thresholds: vec![100],
                    ..base.clone()
                },
                "thresholds",
            ),
            (
                QueueingConfig {
                    data_classes: 3,
                    pias_thresholds: vec![200, 100],
                    ..base.clone()
                },
                "increasing",
            ),
            (
                QueueingConfig {
                    data_classes: 2,
                    ecn_scale: vec![1.0],
                    ..base.clone()
                },
                "ecn_scale",
            ),
            (
                QueueingConfig {
                    data_classes: 2,
                    ecn_scale: vec![1.0, -0.5],
                    ..base.clone()
                },
                "positive",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().expect_err(&format!("{cfg:?} must fail"));
            assert!(err.contains(needle), "{cfg:?} -> {err}");
        }
        // Per-class ECN scaling scales both thresholds, not pmax.
        let scaled = QueueingConfig {
            data_classes: 2,
            ecn_scale: vec![1.0, 0.5],
            ..base
        };
        scaled.validate().unwrap();
        let b = EcnConfig::thresholds_kb(100, 400);
        assert_eq!(scaled.class_ecn(&b, 0), b);
        let half = scaled.class_ecn(&b, 1);
        assert_eq!(half.kmin_bytes, 50_000);
        assert_eq!(half.kmax_bytes, 200_000);
        assert_eq!(half.pmax, b.pmax);
    }

    #[test]
    fn data_wire_size_includes_int_budget_only_when_enabled() {
        let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), LINE, RTT);
        assert_eq!(cfg.data_wire_size(), 64 + 42 + 1000);
        cfg.int_enabled = false;
        assert_eq!(cfg.data_wire_size(), 64 + 1000);
    }
}
