//! Building, running and analysing one simulation.
//!
//! [`Experiment`] is deliberately opaque: it is constructed through
//! [`ExperimentBuilder`] (or, one level up, from a declarative
//! [`crate::scenario::ScenarioSpec`]) so that its invariants — a `SimConfig`
//! consistent with the congestion-control scheme and the topology's base RTT
//! — hold by construction instead of by caller discipline.

use hpcc_cc::CcAlgorithm;
use hpcc_sim::{
    backend_for, BackendKind, CompiledScenario, EcnConfig, FlowControlMode, QueueingConfig,
    SimConfig, SimOutput,
};
use hpcc_stats::fct::{FlowFct, SizeBucketStats};
use hpcc_stats::pfc::{pause_burst_spread, PfcSummary};
use hpcc_stats::queue::{queue_cdf, queue_percentile};
use hpcc_stats::series::goodput_series_gbps;
use hpcc_stats::{FctAnalyzer, FctBucket, Percentiles};
use hpcc_topology::{NodeKind, TopologySpec};
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, PortId, SimTime};

/// Wire size of a full data packet with the INT budget — the MTU the base-RTT
/// suggestion is computed against throughout the workspace.
pub const MTU_WIRE_SIZE: u64 = 1106;

/// One fully specified simulation: a topology, a behavioural configuration
/// and a flow list, plus a label used in reports.
///
/// Construct with [`Experiment::builder`]; inspect with the accessors.
pub struct Experiment {
    label: String,
    topo: TopologySpec,
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    host_bw: Bandwidth,
    backend: BackendKind,
}

impl Experiment {
    /// Start building an experiment. The builder derives a [`SimConfig`] with
    /// paper defaults for `cc` from the topology's suggested base RTT.
    pub fn builder(
        label: impl Into<String>,
        topo: TopologySpec,
        cc: CcAlgorithm,
        host_bw: Bandwidth,
    ) -> ExperimentBuilder {
        ExperimentBuilder::new(label, topo, cc, host_bw)
    }

    /// Human-readable label ("HPCC", "DCQCN Kmin=100K", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The network to simulate.
    pub fn topology(&self) -> &TopologySpec {
        &self.topo
    }

    /// Host/switch behaviour.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Flows to inject.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Host NIC rate (used for ideal-FCT computation).
    pub fn host_bw(&self) -> Bandwidth {
        self.host_bw
    }

    /// The engine this experiment runs on.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Run the simulation and wrap the raw output with analysis helpers.
    ///
    /// Dispatches through the [`hpcc_sim::Backend`] boundary: the default
    /// [`BackendKind::Packet`] path issues exactly the calls the pre-boundary
    /// code made (golden digests are pinned on it), while
    /// [`BackendKind::Fluid`] answers the same scenario with the Appendix A.2
    /// fluid model.
    pub fn run(self) -> ExperimentResults {
        let analyzer = FctAnalyzer::new(self.host_bw, self.cfg.base_rtt, self.cfg.int_enabled);
        let host_count = self.topo.hosts().len();
        let flow_count = self.flows.len();
        let out = backend_for(self.backend).run(CompiledScenario {
            topo: self.topo,
            cfg: self.cfg,
            flows: self.flows,
        });
        ExperimentResults {
            label: self.label,
            analyzer,
            out,
            flow_count,
            host_count,
        }
    }
}

/// Fluent constructor for [`Experiment`].
///
/// Created via [`Experiment::builder`]. Every setter returns `self`, so a
/// full experiment reads as one expression:
///
/// ```
/// use hpcc_cc::CcAlgorithm;
/// use hpcc_core::Experiment;
/// use hpcc_topology::star;
/// use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, SimTime};
///
/// let bw = Bandwidth::from_gbps(100);
/// let topo = star(3, bw, Duration::from_us(1));
/// let hosts = topo.hosts().to_vec();
/// let exp = Experiment::builder("2-to-1", topo, CcAlgorithm::hpcc_default(), bw)
///     .duration(Duration::from_ms(1))
///     .queue_sampling(Duration::from_us(2))
///     .add_flow(FlowSpec::new(FlowId(1), hosts[0], hosts[2], 100_000, SimTime::ZERO))
///     .add_flow(FlowSpec::new(FlowId(2), hosts[1], hosts[2], 100_000, SimTime::ZERO))
///     .build();
/// assert_eq!(exp.flows().len(), 2);
/// let res = exp.run();
/// assert_eq!(res.completion_fraction(), 1.0);
/// ```
pub struct ExperimentBuilder {
    label: String,
    topo: TopologySpec,
    cfg: SimConfig,
    flows: Vec<FlowSpec>,
    host_bw: Bandwidth,
    backend: BackendKind,
}

impl ExperimentBuilder {
    fn new(
        label: impl Into<String>,
        topo: TopologySpec,
        cc: CcAlgorithm,
        host_bw: Bandwidth,
    ) -> Self {
        let base_rtt = topo.suggested_base_rtt(MTU_WIRE_SIZE);
        let cfg = SimConfig::for_cc(cc, host_bw, base_rtt);
        ExperimentBuilder {
            label: label.into(),
            topo,
            cfg,
            flows: Vec::new(),
            host_bw,
            backend: BackendKind::Packet,
        }
    }

    /// Select the engine that answers the scenario (default: the packet
    /// event-wheel). The fluid backend rejects nothing here — spec-level
    /// validation of fluid × unsupported features lives on
    /// [`crate::ScenarioSpec`].
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Simulation horizon (events after `ZERO + d` are not processed).
    pub fn duration(mut self, d: Duration) -> Self {
        self.cfg.end_time = SimTime::ZERO + d;
        self
    }

    /// Seed of the deterministic switch RNG (ECN marking, ECMP perturbation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Loss prevention / recovery mode (PFC, go-back-N, IRN).
    pub fn flow_control(mut self, mode: FlowControlMode) -> Self {
        self.cfg.flow_control = mode;
        self
    }

    /// Shared buffer per switch in bytes.
    pub fn buffer_bytes(mut self, bytes: u64) -> Self {
        self.cfg.buffer_bytes = bytes;
        self
    }

    /// Override the ECN marking thresholds.
    pub fn ecn(mut self, ecn: EcnConfig) -> Self {
        self.cfg.ecn = Some(ecn);
        self
    }

    /// Configure multi-class switch queueing (data-class count, egress
    /// scheduler, PIAS tagging thresholds, per-class ECN scaling). The
    /// default is the paper's single-class strict-priority path.
    ///
    /// # Panics
    /// Panics when the configuration violates its invariants (class count
    /// out of `1..=MAX_DATA_CLASSES`, weight/threshold/scale shape
    /// mismatches) — the fallible path is a [`crate::QueueingSpec`] on a
    /// scenario, whose `try_build` surfaces the same violations as typed
    /// [`crate::BuildError`]s.
    pub fn queueing(mut self, queueing: QueueingConfig) -> Self {
        queueing
            .validate()
            .unwrap_or_else(|e| panic!("invalid queueing config: {e}"));
        self.cfg.queueing = queueing;
        self
    }

    /// Attach a fault-injection plan (link outages/flaps, degraded links,
    /// straggler hosts). The default is a healthy network — and a run
    /// bit-identical to a build without the fault machinery.
    ///
    /// # Panics
    /// Panics when the plan references links or hosts the topology lacks or
    /// violates a window invariant — the fallible path is a
    /// [`crate::FaultSpec`] on a scenario, whose `try_build` surfaces the
    /// same violations as typed [`crate::BuildError`]s.
    pub fn faults(mut self, faults: hpcc_sim::FaultConfig) -> Self {
        faults
            .validate(self.topo.links().len(), self.topo.hosts().len())
            .unwrap_or_else(|e| panic!("invalid fault config: {e}"));
        self.cfg.faults = Some(faults);
        self
    }

    /// Override the base RTT handed to the congestion-control algorithms
    /// (and the timers derived from it).
    pub fn base_rtt(mut self, rtt: Duration) -> Self {
        self.cfg.base_rtt = rtt;
        self.cfg.nack_interval = rtt;
        self.cfg.rto = rtt * 64;
        self
    }

    /// Sample all switch data queues into a histogram at this period.
    pub fn queue_sampling(mut self, interval: Duration) -> Self {
        self.cfg.queue_sample_interval = Some(interval);
        self
    }

    /// Trace one egress port's queue length as a time series.
    pub fn trace_port(mut self, port: (NodeId, PortId), interval: Duration) -> Self {
        self.cfg.trace_ports.push(port);
        self.cfg.trace_interval = interval;
        self
    }

    /// Trace the first switch's egress queue towards the given host (the
    /// bottleneck port of star-shaped micro-benchmarks).
    pub fn trace_bottleneck_to(self, host_index: usize, interval: Duration) -> Self {
        let host = self.topo.hosts()[host_index];
        let sw = self.topo.switches()[0];
        let port = self.topo.next_hops(sw, host)[0];
        self.trace_port((sw, port), interval)
    }

    /// Accumulate per-flow goodput into bins of this width.
    pub fn goodput_bin(mut self, bin: Duration) -> Self {
        self.cfg.flow_throughput_bin = Some(bin);
        self
    }

    /// Append one flow.
    pub fn add_flow(mut self, flow: FlowSpec) -> Self {
        self.flows.push(flow);
        self
    }

    /// Append many flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        self.flows.extend(flows);
        self
    }

    /// Escape hatch: mutate the underlying [`SimConfig`] directly for knobs
    /// the builder does not model.
    pub fn configure(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// The topology under construction (e.g. to pick flow endpoints).
    pub fn topology(&self) -> &TopologySpec {
        &self.topo
    }

    /// Finish building.
    pub fn build(self) -> Experiment {
        Experiment {
            label: self.label,
            topo: self.topo,
            cfg: self.cfg,
            flows: self.flows,
            host_bw: self.host_bw,
            backend: self.backend,
        }
    }
}

/// The outcome of one experiment plus derived-metric helpers.
pub struct ExperimentResults {
    /// Label copied from the experiment.
    pub label: String,
    /// Ideal-FCT model used for slowdowns.
    pub analyzer: FctAnalyzer,
    /// Raw simulator output.
    pub out: SimOutput,
    /// Number of flows that were injected.
    pub flow_count: usize,
    /// Number of hosts in the topology.
    pub host_count: usize,
}

impl ExperimentResults {
    /// Per-flow (size, FCT) records.
    pub fn flow_fcts(&self) -> Vec<FlowFct> {
        self.out
            .flows
            .iter()
            .map(|f| FlowFct {
                size: f.size,
                fct: f.fct(),
            })
            .collect()
    }

    /// FCT-slowdown summary per flow-size bucket.
    pub fn slowdown_buckets(&self, buckets: &[FctBucket]) -> Vec<SizeBucketStats> {
        self.analyzer.bucketed_slowdowns(&self.flow_fcts(), buckets)
    }

    /// Overall FCT-slowdown percentiles.
    pub fn slowdown_overall(&self) -> Option<Percentiles> {
        self.analyzer.overall(&self.flow_fcts())
    }

    /// Slowdown percentiles restricted to flows of at most `max_size` bytes
    /// (the paper's "flows shorter than 3KB" style claims).
    pub fn slowdown_for_sizes_up_to(&self, max_size: u64) -> Option<Percentiles> {
        let flows: Vec<FlowFct> = self
            .flow_fcts()
            .into_iter()
            .filter(|f| f.size <= max_size)
            .collect();
        self.analyzer.overall(&flows)
    }

    /// Queue-length CDF points from the sampled histogram.
    pub fn queue_cdf(&self) -> Vec<(u64, f64)> {
        queue_cdf(&self.out.queue_histogram, self.out.queue_histogram_bin)
    }

    /// Queue length at a percentile of the sampled histogram.
    pub fn queue_percentile(&self, p: f64) -> Option<u64> {
        queue_percentile(&self.out.queue_histogram, self.out.queue_histogram_bin, p)
    }

    /// Queue length at a percentile of one data class's sampled histogram
    /// (`None` when the run was single-class or the class saw no samples).
    pub fn class_queue_percentile(&self, class: usize, p: f64) -> Option<u64> {
        let hist = self.out.class_queue_histograms.get(class)?;
        queue_percentile(hist, self.out.queue_histogram_bin, p)
    }

    /// FCT-slowdown percentiles grouped by the flows' application priority
    /// (keyed by [`hpcc_types::FlowPriority`] wire code, ascending). A
    /// single-class legacy run reports one group with code 0.
    pub fn slowdown_by_priority(&self) -> Vec<(u8, Option<Percentiles>)> {
        let flows: Vec<(u8, FlowFct)> = self
            .out
            .flows
            .iter()
            .map(|f| {
                (
                    f.prio,
                    FlowFct {
                        size: f.size,
                        fct: f.fct(),
                    },
                )
            })
            .collect();
        self.analyzer.grouped(&flows)
    }

    /// PFC summary over every port in the run.
    pub fn pfc_summary(&self) -> PfcSummary {
        // simlint: sorted-fold — PfcSummary only sums/counts the pauses, so port order cannot leak.
        let pauses: Vec<Duration> = self.out.ports.values().map(|c| c.pause_duration).collect();
        // simlint: sorted-fold — commutative u64 sum; port order cannot leak.
        let frames: u64 = self.out.ports.values().map(|c| c.pause_frames_sent).sum();
        PfcSummary::new(
            &pauses,
            frames,
            self.out.elapsed.saturating_since(SimTime::ZERO),
        )
    }

    /// Per-burst count of distinct switches that emitted PFC pauses (the
    /// propagation-spread proxy for Figure 1a).
    pub fn pfc_burst_spread(&self, gap: Duration) -> Vec<usize> {
        let events: Vec<(SimTime, NodeId)> = self
            .out
            .pfc_events
            .iter()
            .map(|e| (e.time, e.node))
            .collect();
        pause_burst_spread(&events, gap)
    }

    /// Goodput series (Gbps) of one flow, if goodput tracing was enabled.
    pub fn goodput_gbps(&self, flow: FlowId) -> Vec<f64> {
        self.out
            .flow_goodput
            .get(&flow)
            .map(|bins| goodput_series_gbps(bins, self.out.flow_goodput_bin))
            .unwrap_or_default()
    }

    /// Fraction of injected flows that completed within the horizon.
    pub fn completion_fraction(&self) -> f64 {
        if self.flow_count == 0 {
            return 1.0;
        }
        self.out.flows.len() as f64 / self.flow_count as f64
    }

    /// Total goodput delivered to receivers divided by elapsed time and host
    /// capacity (an average utilization figure).
    pub fn average_utilization(&self, host_bw: Bandwidth) -> f64 {
        let bytes: u64 = self.out.flows.iter().map(|f| f.size).sum();
        let secs = self.out.elapsed.as_secs_f64();
        if secs == 0.0 || self.host_count == 0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (secs * self.host_count as f64 * host_bw.as_bps() as f64)
    }

    /// [`ExperimentResults::average_utilization`] with the denominator
    /// reduced by the host-NIC downtime fault injection imposed: goodput is
    /// divided by the host-seconds the NICs were actually *up*. On a
    /// fault-free run (zero downtime) this equals the legacy figure exactly.
    pub fn utilization_while_up(&self, host_bw: Bandwidth) -> f64 {
        let bytes: u64 = self.out.flows.iter().map(|f| f.size).sum();
        let host_secs = self.out.elapsed.as_secs_f64() * self.host_count as f64
            - self.out.host_nic_downtime.as_secs_f64();
        if host_secs <= 0.0 {
            return 0.0;
        }
        (bytes as f64 * 8.0) / (host_secs * host_bw.as_bps() as f64)
    }
}

/// Count host-facing vs fabric ports of a topology (used in reports).
pub fn port_census(topo: &TopologySpec) -> (usize, usize) {
    let mut host_ports = 0;
    let mut fabric_ports = 0;
    for &s in topo.switches() {
        for p in topo.ports(s) {
            match topo.kind(p.peer_node) {
                NodeKind::Host => host_ports += 1,
                NodeKind::Switch => fabric_ports += 1,
            }
        }
    }
    (host_ports, fabric_ports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_cc::CcAlgorithm;
    use hpcc_topology::star;

    fn tiny_experiment() -> Experiment {
        let bw = Bandwidth::from_gbps(100);
        let topo = star(3, bw, Duration::from_us(1));
        let hosts = topo.hosts().to_vec();
        Experiment::builder("tiny", topo, CcAlgorithm::hpcc_default(), bw)
            .duration(Duration::from_ms(5))
            .queue_sampling(Duration::from_us(2))
            .goodput_bin(Duration::from_us(50))
            .flows([
                FlowSpec::new(FlowId(1), hosts[0], hosts[2], 500_000, SimTime::ZERO),
                FlowSpec::new(FlowId(2), hosts[1], hosts[2], 500_000, SimTime::ZERO),
                FlowSpec::new(FlowId(3), hosts[0], hosts[1], 2_000, SimTime::from_us(50)),
            ])
            .build()
    }

    #[test]
    fn experiment_runs_and_derives_metrics() {
        let res = tiny_experiment().run();
        assert_eq!(res.label, "tiny");
        assert_eq!(res.out.flows.len(), 3);
        assert_eq!(res.completion_fraction(), 1.0);
        // Slowdowns exist and are at least 1.
        let overall = res.slowdown_overall().unwrap();
        assert_eq!(overall.count, 3);
        assert!(overall.p50 >= 1.0);
        // The small flow has a small slowdown bucketed separately.
        let small = res.slowdown_for_sizes_up_to(3_000).unwrap();
        assert_eq!(small.count, 1);
        // Queue CDF exists and ends at 1.
        let cdf = res.queue_cdf();
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        assert!(res.queue_percentile(50.0).is_some());
        // No PFC with HPCC here.
        let pfc = res.pfc_summary();
        assert_eq!(pfc.pause_time_fraction(), 0.0);
        assert!(res.pfc_burst_spread(Duration::from_us(100)).is_empty());
        // Goodput series sums to the flow size.
        let g = res.goodput_gbps(FlowId(1));
        assert!(!g.is_empty());
        let util = res.average_utilization(Bandwidth::from_gbps(100));
        assert!(util > 0.0 && util < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid queueing config")]
    fn builder_rejects_invalid_queueing_configs() {
        let bw = Bandwidth::from_gbps(100);
        let topo = star(2, bw, Duration::from_us(1));
        // 5 data classes exceeds Priority::MAX_DATA_CLASSES: the builder
        // must reject it here instead of letting the hot path panic later.
        Experiment::builder("bad", topo, CcAlgorithm::hpcc_default(), bw).queueing(
            hpcc_sim::QueueingConfig {
                data_classes: 5,
                ..hpcc_sim::QueueingConfig::legacy()
            },
        );
    }

    #[test]
    fn port_census_counts_host_and_fabric_ports() {
        let topo = star(4, Bandwidth::from_gbps(25), Duration::from_us(1));
        assert_eq!(port_census(&topo), (4, 0));
        let pod = hpcc_topology::testbed_pod(Duration::from_us(1));
        // 32 host-facing ports; 4 ToR uplinks + 4 Agg downlinks = 8 fabric.
        assert_eq!(port_census(&pod), (32, 8));
    }
}
