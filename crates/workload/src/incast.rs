//! Incast burst generation.
//!
//! Incast (many senders → one receiver, all starting together) is the
//! stress case used throughout the paper: §2.3's production incidents,
//! Figure 2b/11's "30% load + incast", and the 16-to-1 micro-benchmarks of
//! §5.4. Incasts here come in two flavours: a single burst ([`incast`]) and
//! a repeating pattern targeting a fraction of network capacity
//! ([`IncastGenerator`], mirroring §5.3's "incast traffic load is 2% of the
//! network capacity").

use hpcc_types::rng::SplitMix64;
use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, NodeId, SimTime};

/// One incast burst: every host in `senders` sends `size` bytes to
/// `receiver` starting at `start`. Flow ids are `first_id..`.
pub fn incast(
    senders: &[NodeId],
    receiver: NodeId,
    size: u64,
    start: SimTime,
    first_id: u64,
) -> Vec<FlowSpec> {
    senders
        .iter()
        .filter(|s| **s != receiver)
        .enumerate()
        .map(|(i, &src)| FlowSpec::new(FlowId(first_id + i as u64), src, receiver, size, start))
        .collect()
}

/// Repeating incast bursts with random fan-in groups, sized so that the
/// incast traffic equals a target fraction of the network capacity.
#[derive(Clone, Debug)]
pub struct IncastGenerator {
    hosts: Vec<NodeId>,
    host_bandwidth: Bandwidth,
    /// Senders per burst (the paper uses 60).
    pub fan_in: usize,
    /// Bytes each sender transmits per burst (the paper uses 500 KB).
    pub flow_size: u64,
    /// Target fraction of aggregate host capacity consumed by incast traffic
    /// (the paper uses 2%).
    pub capacity_fraction: f64,
    seed: u64,
    first_id: u64,
}

impl IncastGenerator {
    /// Create a generator matching the paper's §5.3 setup by default
    /// (60-to-1, 500 KB per sender, 2% of capacity).
    pub fn paper_default(hosts: Vec<NodeId>, host_bandwidth: Bandwidth, seed: u64) -> Self {
        IncastGenerator {
            hosts,
            host_bandwidth,
            fan_in: 60,
            flow_size: 500_000,
            capacity_fraction: 0.02,
            seed,
            first_id: 10_000_000,
        }
    }

    /// Override the fan-in (senders per burst).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        self.fan_in = fan_in;
        self
    }

    /// Override the per-sender burst size.
    pub fn with_flow_size(mut self, size: u64) -> Self {
        self.flow_size = size;
        self
    }

    /// Override the capacity fraction.
    pub fn with_capacity_fraction(mut self, frac: f64) -> Self {
        self.capacity_fraction = frac;
        self
    }

    /// Override the first flow id used.
    pub fn with_first_flow_id(mut self, id: u64) -> Self {
        self.first_id = id;
        self
    }

    /// The burst period implied by the target capacity fraction: each burst
    /// moves `fan_in * flow_size` bytes, and bursts repeat so that this
    /// equals `capacity_fraction` of the aggregate host capacity.
    pub fn burst_period(&self) -> Duration {
        let bytes_per_burst = (self.fan_in as u64 * self.flow_size) as f64;
        let capacity_bytes = self.hosts.len() as f64 * self.host_bandwidth.bytes_per_sec();
        let period_sec = bytes_per_burst / (self.capacity_fraction * capacity_bytes);
        Duration::from_secs_f64(period_sec)
    }

    /// Generate all bursts within `[0, duration)`.
    pub fn generate(&self, duration: Duration) -> Vec<FlowSpec> {
        let mut rng = SplitMix64::new(self.seed);
        let period = self.burst_period();
        let mut flows = Vec::new();
        let mut id = self.first_id;
        let mut t = period; // first burst after one period, not at t=0
        while t < duration {
            // Pick a receiver and `fan_in` distinct senders.
            let recv_i = rng.next_below(self.hosts.len() as u64) as usize;
            let receiver = self.hosts[recv_i];
            let mut senders = Vec::with_capacity(self.fan_in);
            while senders.len() < self.fan_in.min(self.hosts.len() - 1) {
                let s = self.hosts[rng.next_below(self.hosts.len() as u64) as usize];
                if s != receiver && !senders.contains(&s) {
                    senders.push(s);
                }
            }
            let start = SimTime::ZERO + t;
            let burst = incast(&senders, receiver, self.flow_size, start, id);
            id += burst.len() as u64;
            flows.extend(burst);
            t += period;
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn single_incast_targets_one_receiver() {
        let h = hosts(17);
        let flows = incast(&h[0..16], h[16], 500_000, SimTime::from_us(10), 100);
        assert_eq!(flows.len(), 16);
        assert!(flows.iter().all(|f| f.dst == h[16]));
        assert!(flows.iter().all(|f| f.size == 500_000));
        assert!(flows.iter().all(|f| f.start == SimTime::from_us(10)));
        assert_eq!(flows[0].id, FlowId(100));
        assert_eq!(flows[15].id, FlowId(115));
        // The receiver is excluded even if listed among the senders.
        let with_recv = incast(&h, h[16], 1000, SimTime::ZERO, 0);
        assert_eq!(with_recv.len(), 16);
    }

    #[test]
    fn burst_period_matches_capacity_fraction() {
        let g = IncastGenerator::paper_default(hosts(320), Bandwidth::from_gbps(100), 1);
        // 60 * 500 KB = 30 MB per burst; 2% of 320*100 Gbps = 80 GB/s... per
        // second of simulated time the bursts must move 80 Gbit/s * ... –
        // easier to check the definition directly:
        let period = g.burst_period();
        let bytes_per_sec = (60.0 * 500_000.0) / period.as_secs_f64();
        let target = 0.02 * 320.0 * Bandwidth::from_gbps(100).bytes_per_sec();
        assert!((bytes_per_sec - target).abs() / target < 1e-6);
    }

    #[test]
    fn generated_bursts_cover_the_duration() {
        let g = IncastGenerator::paper_default(hosts(64), Bandwidth::from_gbps(25), 3)
            .with_fan_in(8)
            .with_flow_size(100_000)
            .with_capacity_fraction(0.05);
        let d = Duration::from_ms(100);
        let flows = g.generate(d);
        assert!(!flows.is_empty());
        assert_eq!(flows.len() % 8, 0, "each burst has exactly fan_in flows");
        // Each burst's flows share a start time and a receiver, senders are
        // distinct.
        for burst in flows.chunks(8) {
            let recv = burst[0].dst;
            let start = burst[0].start;
            assert!(burst.iter().all(|f| f.dst == recv && f.start == start));
            let mut srcs: Vec<_> = burst.iter().map(|f| f.src).collect();
            srcs.sort();
            srcs.dedup();
            assert_eq!(srcs.len(), 8);
        }
        // Flow ids don't collide with the background generator convention.
        assert!(flows.iter().all(|f| f.id.raw() >= 10_000_000));
    }

    #[test]
    fn burst_count_and_flow_count_match_the_period() {
        let g = IncastGenerator::paper_default(hosts(64), Bandwidth::from_gbps(25), 9)
            .with_fan_in(12)
            .with_flow_size(250_000)
            .with_capacity_fraction(0.04);
        let d = Duration::from_ms(150);
        let flows = g.generate(d);
        // Bursts fire at period, 2*period, … while t < duration, each
        // contributing exactly fan_in flows.
        let period = g.burst_period();
        let expected_bursts = ((d.as_ps() - 1) / period.as_ps()) as usize;
        assert!(expected_bursts > 0);
        assert_eq!(flows.len(), expected_bursts * 12);
        let starts: std::collections::BTreeSet<_> = flows.iter().map(|f| f.start).collect();
        assert_eq!(starts.len(), expected_bursts);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let make = |seed: u64| {
            IncastGenerator::paper_default(hosts(32), Bandwidth::from_gbps(25), seed)
                .with_fan_in(8)
                .with_capacity_fraction(0.05)
                .generate(Duration::from_ms(100))
        };
        assert_eq!(make(3), make(3));
        assert_ne!(make(3), make(4));
    }

    #[test]
    fn fan_in_larger_than_host_count_is_clamped() {
        let g = IncastGenerator::paper_default(hosts(5), Bandwidth::from_gbps(25), 3)
            .with_capacity_fraction(0.10);
        let flows = g.generate(Duration::from_ms(200));
        assert!(!flows.is_empty());
        // Only 4 senders are possible.
        assert_eq!(flows.len() % 4, 0);
    }
}
