//! Print the INT header overhead table (Figure 7 / §4.1).
fn main() {
    print!("{}", hpcc_bench::figures::tab_int_overhead());
}
