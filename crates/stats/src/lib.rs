//! # hpcc-stats
//!
//! Turns the raw records a simulation produces into the derived metrics the
//! paper reports:
//!
//! * [`mod@percentile`] — percentile helpers,
//! * [`fct`] — flow-completion-time slowdown, grouped into the paper's
//!   flow-size buckets with median / 95th / 99th percentiles (Figures 2, 3,
//!   10, 11, 12),
//! * [`queue`] — queue-length CDFs from sampled histograms (Figures 9f, 10b,
//!   10d),
//! * [`pfc`] — PFC pause-time fractions and pause propagation analysis
//!   (Figures 1, 2b, 11b, 11d),
//! * [`series`] — goodput and queue time series (Figures 6, 9a–9d, 13, 14)
//!   and Jain's fairness index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fct;
pub mod percentile;
pub mod pfc;
pub mod queue;
pub mod series;

pub use fct::{FctAnalyzer, FctBucket, SizeBucketStats};
pub use percentile::{percentile, Percentiles};
pub use pfc::PfcSummary;
pub use queue::queue_cdf;
pub use series::{goodput_series_gbps, jain_fairness_index};
