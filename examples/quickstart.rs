//! Quickstart: run HPCC and DCQCN side by side on a 2-to-1 bottleneck and
//! print what the paper's §5.2 micro-benchmarks show — HPCC keeps the queue
//! near zero while DCQCN keeps a standing queue near its ECN threshold.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hpcc::core::presets::incast_on_star;
use hpcc::core::report;
use hpcc::prelude::*;

fn main() {
    let host_bw = Bandwidth::from_gbps(100);
    let duration = Duration::from_ms(3);
    let flow_size = 4_000_000;

    println!("== 2-to-1 congestion, {flow_size} B per sender, {host_bw} hosts ==\n");

    let mut results = Vec::new();
    for label in ["HPCC", "DCQCN"] {
        let spec = incast_on_star(
            label,
            CcSpec::by_label(label),
            2,
            flow_size,
            host_bw,
            duration,
        );
        let res = spec.run();
        println!(
            "{label:>8}: {} flows finished, 99p queue = {:.1} KB, max queue = {:.1} KB, \
             PFC pause frames = {}",
            res.out.flows.len(),
            res.queue_percentile(99.0).unwrap_or(0) as f64 / 1000.0,
            res.out.max_queue_bytes() as f64 / 1000.0,
            res.pfc_summary().pause_frames,
        );
        results.push(res);
    }

    println!("\n-- queue occupancy ----------------------------------------");
    let refs: Vec<&ExperimentResults> = results.iter().collect();
    print!("{}", report::queue_table(&refs));

    println!("\n-- flow completion times ----------------------------------");
    for res in &results {
        let overall = res.slowdown_overall().expect("flows completed");
        println!(
            "{:>8}: median slowdown {:.2}x, 95p {:.2}x, 99p {:.2}x",
            res.label, overall.p50, overall.p95, overall.p99
        );
    }

    println!(
        "\nHPCC trades ~5% bandwidth headroom (eta = 95%) for near-empty queues;\n\
         DCQCN fills the buffer up to its ECN threshold before reacting."
    );
}
