//! Plain-text rendering of experiment results, in the same shape as the
//! paper's tables and figure series (rows of size-bucket × percentile, queue
//! CDF points, PFC summaries). The figure harnesses print these so a run's
//! output can be compared side by side with the paper.

use crate::experiment::ExperimentResults;
use hpcc_stats::fct::{FctBucket, SizeBucketStats};
use hpcc_stats::queue::queue_percentile;
use hpcc_types::Duration;
use std::fmt::Write as _;

/// Render a slowdown-per-bucket table for several experiments side by side,
/// at one percentile (50, 95 or 99) — the shape of Figures 2a/3/10a/11a.
pub fn slowdown_table(
    results: &[&ExperimentResults],
    buckets: &[FctBucket],
    percentile: f64,
) -> String {
    let mut s = String::new();
    write!(s, "{:>10}", "flow size").unwrap();
    for r in results {
        write!(s, " {:>14}", truncate(&r.label, 14)).unwrap();
    }
    writeln!(s).unwrap();
    let rows: Vec<Vec<SizeBucketStats>> = results
        .iter()
        .map(|r| r.slowdown_buckets(buckets))
        .collect();
    for (bi, b) in buckets.iter().enumerate() {
        write!(s, "{:>10}", b.label).unwrap();
        for row in &rows {
            match row[bi].stats {
                Some(p) => {
                    let v = match percentile as u32 {
                        50 => p.p50,
                        95 => p.p95,
                        _ => p.p99,
                    };
                    write!(s, " {v:>14.2}").unwrap();
                }
                None => write!(s, " {:>14}", "-").unwrap(),
            }
        }
        writeln!(s).unwrap();
    }
    s
}

/// Render queue-length percentiles (median / 95 / 99 / max) for several
/// experiments — the shape of Figures 9f/10b/10d.
pub fn queue_table(results: &[&ExperimentResults]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "p50 (KB)", "p95 (KB)", "p99 (KB)", "max (KB)"
    )
    .unwrap();
    for r in results {
        let p = |pct: f64| {
            queue_percentile(&r.out.queue_histogram, r.out.queue_histogram_bin, pct)
                .map(|v| v as f64 / 1000.0)
                .unwrap_or(f64::NAN)
        };
        writeln!(
            s,
            "{:<24} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            truncate(&r.label, 24),
            p(50.0),
            p(95.0),
            p(99.0),
            r.out.max_queue_bytes() as f64 / 1000.0
        )
        .unwrap();
    }
    s
}

/// Render the PFC pause-time fraction and completion statistics — the shape
/// of Figures 2b/11b/11d.
pub fn pfc_table(results: &[&ExperimentResults]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "{:<24} {:>14} {:>12} {:>12} {:>12}",
        "scheme", "pause time %", "pause frames", "drops", "completed %"
    )
    .unwrap();
    for r in results {
        let pfc = r.pfc_summary();
        writeln!(
            s,
            "{:<24} {:>14.3} {:>12} {:>12} {:>12.1}",
            truncate(&r.label, 24),
            pfc.pause_time_fraction() * 100.0,
            pfc.pause_frames,
            r.out.total_drops(),
            r.completion_fraction() * 100.0
        )
        .unwrap();
    }
    s
}

/// Render a traced queue-length time series as `time_us value_KB` rows,
/// down-sampled to at most `max_points` (Figures 6/13b/14b).
pub fn queue_trace(series: &[(hpcc_types::SimTime, u64)], max_points: usize) -> String {
    let mut s = String::new();
    writeln!(s, "{:>12} {:>12}", "time (us)", "queue (KB)").unwrap();
    let step = (series.len() / max_points.max(1)).max(1);
    for (t, q) in series.iter().step_by(step) {
        writeln!(s, "{:>12.1} {:>12.2}", t.as_us_f64(), *q as f64 / 1000.0).unwrap();
    }
    s
}

/// Render a goodput time series as `time_us gbps` rows (Figures 9a–9d, 13a).
pub fn goodput_trace(series_gbps: &[f64], bin: Duration, max_points: usize) -> String {
    let mut s = String::new();
    writeln!(s, "{:>12} {:>12}", "time (us)", "Gbps").unwrap();
    let step = (series_gbps.len() / max_points.max(1)).max(1);
    for (i, g) in series_gbps.iter().enumerate().step_by(step) {
        writeln!(
            s,
            "{:>12.1} {:>12.2}",
            (i as u64 * bin.as_ns()) as f64 / 1000.0,
            g
        )
        .unwrap();
    }
    s
}

/// Truncate a label to at most `n` bytes without splitting a UTF-8
/// character (shared by the report tables and the campaign table).
pub(crate) fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        return s.to_string();
    }
    let mut end = n;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    s[..end].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::incast_on_star;
    use crate::scenario::CcSpec;
    use hpcc_stats::fct::websearch_buckets;
    use hpcc_types::{Bandwidth, SimTime};

    fn quick_result() -> ExperimentResults {
        incast_on_star(
            "HPCC",
            CcSpec::by_label("HPCC"),
            4,
            200_000,
            Bandwidth::from_gbps(100),
            Duration::from_ms(2),
        )
        .run()
    }

    #[test]
    fn tables_render_without_panicking_and_contain_labels() {
        let r = quick_result();
        let refs = [&r];
        let t = slowdown_table(&refs, &websearch_buckets(), 95.0);
        assert!(t.contains("HPCC"));
        assert!(t.contains("200K"));
        let q = queue_table(&refs);
        assert!(q.contains("p99"));
        let p = pfc_table(&refs);
        assert!(p.contains("pause time %"));
        assert!(p.contains("100.0"), "all flows complete: {p}");
    }

    #[test]
    fn traces_are_downsampled() {
        let series: Vec<(SimTime, u64)> =
            (0..1000).map(|i| (SimTime::from_us(i), i * 100)).collect();
        let txt = queue_trace(&series, 50);
        let lines = txt.lines().count();
        assert!(lines <= 52, "got {lines} lines");
        let g = goodput_trace(&[1.0; 500], Duration::from_us(10), 20);
        assert!(g.lines().count() <= 27);
    }

    #[test]
    fn label_truncation() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("averyverylonglabel", 6), "averyv");
        // Never splits a multi-byte character ("µ" is 2 bytes).
        assert_eq!(truncate("µµµµ", 5), "µµ");
        assert_eq!(truncate("aµb", 2), "a");
    }
}
