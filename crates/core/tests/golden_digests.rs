//! Golden-digest regression test for the event engine.
//!
//! The digests below were recorded with the original `BinaryHeap` event
//! queue (after the `events_processed` horizon-count fix), running the
//! Figure 11 preset set serially. The indexed event wheel, the reusable
//! Effects arena, the packet pool and the dense flow-slot tables must all
//! reproduce these runs bit for bit: any divergence in event ordering,
//! packet contents or counters changes a digest.
//!
//! The digests were recorded on x86_64 Linux (the CI platform). Plain
//! IEEE-754 arithmetic is bit-exact everywhere; the one libm call on the
//! digest path (`f64::ln` in the Poisson arrival generator) could in theory
//! differ on another libc. If a platform ever disagrees, record its digests
//! in a `cfg`-gated table rather than weakening the test.

use hpcc_core::presets::fig11_campaign;
use hpcc_topology::FatTreeParams;
use hpcc_types::Duration;

/// (scheme label, FNV-1a digest of the raw serial SimOutput).
const GOLDEN: [(&str, u64); 6] = [
    ("DCQCN", 9696511560651529738),
    ("TIMELY", 6158160786810326921),
    ("DCQCN+win", 7446130154451631401),
    ("TIMELY+win", 1109170641124816498),
    ("DCTCP", 2347575181251293493),
    ("HPCC", 16016071765438548943),
];

#[test]
fn fig11_serial_digests_match_the_binaryheap_engine() {
    let campaign = fig11_campaign(FatTreeParams::small(), 0.3, Duration::from_ms(3), true, 42);
    let report = campaign.run_serial();
    assert_eq!(report.results.len(), GOLDEN.len());
    let actual: Vec<(String, u64)> = report
        .results
        .iter()
        .map(|r| (r.name.clone(), r.digest))
        .collect();
    let expected: Vec<(String, u64)> = GOLDEN.iter().map(|(n, d)| (n.to_string(), *d)).collect();
    assert_eq!(
        actual, expected,
        "engine no longer reproduces the BinaryHeap reference runs \
         (actual digests on the left)"
    );
}
