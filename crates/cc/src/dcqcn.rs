//! DCQCN reaction-point (sender) algorithm — the production baseline the
//! paper compares against (Zhu et al., SIGCOMM 2015, as deployed on
//! commodity RoCE NICs).
//!
//! The reaction point keeps a current rate `Rc`, a target rate `Rt` and a
//! congestion estimate `alpha`:
//!
//! * **CNP received** (at most one rate decrease per `Td`, the paper's
//!   "rate-decreasing timer"): `Rt = Rc`, `Rc *= (1 - alpha/2)`,
//!   `alpha = (1-g) alpha + g`, and all increase stages reset.
//! * **Alpha timer** (every `alpha_resume_interval` without a CNP):
//!   `alpha *= (1-g)`.
//! * **Rate increase** happens on two independent triggers — a timer of
//!   period `Ti` (the paper's "rate-increasing timer") and a byte counter —
//!   each advancing a stage counter. Depending on the stages the increase is
//!   *fast recovery* (`Rc = (Rt + Rc)/2`), *additive* (`Rt += Rai`) or
//!   *hyper* (`Rt += Rhai`).
//!
//! The sender starts at line rate, exactly as in the RDMA deployment model.

use crate::api::{clamp_rate, AckEvent, CongestionControl, FlowRateState};
use hpcc_types::{Bandwidth, Duration, SimTime};

/// DCQCN parameters. The defaults follow the vendor defaults used in §5.1
/// (with the ECN thresholds living in the switch configuration, not here).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DcqcnConfig {
    /// EWMA gain `g` for alpha (default 1/256).
    pub g: f64,
    /// Additive increase step `Rai`.
    pub rai: Bandwidth,
    /// Hyper increase step `Rhai`.
    pub rhai: Bandwidth,
    /// Number of fast-recovery stages `F` before additive increase.
    pub fast_recovery_threshold: u32,
    /// Rate-increase timer period `Ti` (Figure 2: 55 µs, 300 µs, 900 µs).
    pub timer_ti: Duration,
    /// Bytes between byte-counter-triggered increases.
    pub byte_counter: u64,
    /// Alpha update timer (55 µs in the original paper).
    pub alpha_resume_interval: Duration,
    /// Minimum interval between two successive rate decreases `Td`
    /// (Figure 2: 4 µs or 50 µs).
    pub rate_decrease_interval_td: Duration,
    /// Minimum rate.
    pub min_rate: Bandwidth,
    /// Initial alpha.
    pub initial_alpha: f64,
    /// If true, also treat ECN-echo bits on ordinary ACKs as congestion
    /// notifications (used when the receiver does not generate CNPs).
    pub react_to_ecn_ack: bool,
}

impl DcqcnConfig {
    /// Vendor-default configuration used in §5.1 for a NIC of `line_rate`:
    /// `Ti = 300 µs`, `Td = 4 µs`, AI step scaled with the line rate.
    pub fn vendor_default(line_rate: Bandwidth) -> Self {
        let scale = line_rate.as_bps() as f64 / 25e9;
        DcqcnConfig {
            g: 1.0 / 256.0,
            rai: Bandwidth::from_mbps((40.0 * scale).max(1.0) as u64),
            rhai: Bandwidth::from_mbps((400.0 * scale).max(1.0) as u64),
            fast_recovery_threshold: 5,
            timer_ti: Duration::from_us(300),
            byte_counter: 10_000_000,
            alpha_resume_interval: Duration::from_us(55),
            rate_decrease_interval_td: Duration::from_us(4),
            min_rate: Bandwidth::from_mbps(100),
            initial_alpha: 1.0,
            react_to_ecn_ack: false,
        }
    }

    /// The original-paper timer setting of Figure 2 (`Ti = 55 µs`, `Td = 50 µs`).
    pub fn paper_timers(line_rate: Bandwidth) -> Self {
        DcqcnConfig {
            timer_ti: Duration::from_us(55),
            rate_decrease_interval_td: Duration::from_us(50),
            ..Self::vendor_default(line_rate)
        }
    }

    /// The conservative setting of Figure 2 (`Ti = 900 µs`, `Td = 4 µs`).
    pub fn conservative_timers(line_rate: Bandwidth) -> Self {
        DcqcnConfig {
            timer_ti: Duration::from_us(900),
            rate_decrease_interval_td: Duration::from_us(4),
            ..Self::vendor_default(line_rate)
        }
    }

    /// Override the two timers swept in Figure 2.
    pub fn with_timers(mut self, ti: Duration, td: Duration) -> Self {
        self.timer_ti = ti;
        self.rate_decrease_interval_td = td;
        self
    }
}

/// DCQCN reaction point for one flow.
#[derive(Debug)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    line_rate: Bandwidth,
    /// Current rate `Rc`.
    rc: Bandwidth,
    /// Target rate `Rt`.
    rt: Bandwidth,
    alpha: f64,
    /// Stage counters for the timer and byte-counter triggers.
    time_stage: u32,
    byte_stage: u32,
    bytes_since_increase: u64,
    /// Whether a CNP arrived since the last alpha-timer expiry.
    cnp_since_alpha_timer: bool,
    last_decrease: Option<SimTime>,
    /// Next expiry of the rate-increase timer.
    next_increase: SimTime,
    /// Next expiry of the alpha-update timer.
    next_alpha: SimTime,
    /// Count of rate decreases applied (exposed for tests / traces).
    pub decrease_events: u64,
    /// Count of rate increase events applied.
    pub increase_events: u64,
}

impl Dcqcn {
    /// Create a DCQCN instance starting at line rate.
    pub fn new(cfg: DcqcnConfig, line_rate: Bandwidth) -> Self {
        Dcqcn {
            cfg,
            line_rate,
            rc: line_rate,
            rt: line_rate,
            alpha: cfg.initial_alpha,
            time_stage: 0,
            byte_stage: 0,
            bytes_since_increase: 0,
            cnp_since_alpha_timer: false,
            last_decrease: None,
            next_increase: SimTime::ZERO + cfg.timer_ti,
            next_alpha: SimTime::ZERO + cfg.alpha_resume_interval,
            decrease_events: 0,
            increase_events: 0,
        }
    }

    /// Current `alpha` congestion estimate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current target rate `Rt`.
    pub fn target_rate(&self) -> Bandwidth {
        self.rt
    }

    fn cut_rate(&mut self, now: SimTime) {
        if let Some(t) = self.last_decrease {
            if now.saturating_since(t) < self.cfg.rate_decrease_interval_td {
                // Rate decreases are limited to once per Td; alpha still
                // tracks the congestion notification below.
                self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
                self.cnp_since_alpha_timer = true;
                return;
            }
        }
        self.rt = self.rc;
        self.rc = clamp_rate(
            self.rc.mul_f64(1.0 - self.alpha / 2.0),
            self.cfg.min_rate,
            self.line_rate,
        );
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.time_stage = 0;
        self.byte_stage = 0;
        self.bytes_since_increase = 0;
        self.cnp_since_alpha_timer = true;
        self.last_decrease = Some(now);
        self.decrease_events += 1;
        // Restart both timers relative to the decrease, as the RP spec does.
        self.next_increase = now + self.cfg.timer_ti;
        self.next_alpha = now + self.cfg.alpha_resume_interval;
    }

    fn increase_rate(&mut self) {
        let f = self.cfg.fast_recovery_threshold;
        if self.time_stage < f && self.byte_stage < f {
            // Fast recovery: move half-way back towards the target rate.
        } else if self.time_stage < f || self.byte_stage < f {
            // Additive increase once one trigger passed the threshold.
            self.rt = clamp_rate(self.rt + self.cfg.rai, self.cfg.min_rate, self.line_rate);
        } else {
            // Hyper increase once both triggers are past the threshold.
            self.rt = clamp_rate(self.rt + self.cfg.rhai, self.cfg.min_rate, self.line_rate);
        }
        self.rc = clamp_rate(
            Bandwidth::from_bps((self.rt.as_bps() + self.rc.as_bps()) / 2),
            self.cfg.min_rate,
            self.line_rate,
        );
        self.increase_events += 1;
    }
}

impl CongestionControl for Dcqcn {
    fn on_ack(&mut self, ack: &AckEvent<'_>) {
        // Byte-counter increase trigger.
        self.bytes_since_increase += ack.newly_acked;
        if self.bytes_since_increase >= self.cfg.byte_counter {
            self.bytes_since_increase -= self.cfg.byte_counter;
            self.byte_stage += 1;
            self.increase_rate();
        }
        if self.cfg.react_to_ecn_ack && ack.ecn_echo {
            self.cut_rate(ack.now);
        }
    }

    fn on_cnp(&mut self, now: SimTime) {
        self.cut_rate(now);
    }

    fn on_loss(&mut self, now: SimTime) {
        // DCQCN has no explicit loss reaction; treat it like a notification
        // so that lossy (no-PFC) configurations still back off.
        self.cut_rate(now);
    }

    fn next_timer(&self) -> Option<SimTime> {
        Some(self.next_increase.min(self.next_alpha))
    }

    fn on_timer(&mut self, now: SimTime) {
        if now >= self.next_alpha {
            if !self.cnp_since_alpha_timer {
                self.alpha *= 1.0 - self.cfg.g;
            }
            self.cnp_since_alpha_timer = false;
            self.next_alpha = now + self.cfg.alpha_resume_interval;
        }
        if now >= self.next_increase {
            self.time_stage += 1;
            self.increase_rate();
            self.next_increase = now + self.cfg.timer_ti;
        }
    }

    fn state(&self) -> FlowRateState {
        FlowRateState {
            window: FlowRateState::UNLIMITED_WINDOW,
            rate: self.rc,
        }
    }

    fn name(&self) -> &'static str {
        "DCQCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_types::IntHeader;

    const LINE: Bandwidth = Bandwidth::from_gbps(25);

    fn ack(now_us: u64, bytes: u64, ecn: bool, int: &IntHeader) -> AckEvent<'_> {
        AckEvent {
            now: SimTime::from_us(now_us),
            ack_seq: 0,
            snd_nxt: 0,
            newly_acked: bytes,
            ecn_echo: ecn,
            rtt: Duration::from_us(10),
            int,
        }
    }

    #[test]
    fn starts_at_line_rate_without_window_limit() {
        let d = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        assert_eq!(d.state().rate, LINE);
        assert!(!d.state().is_window_limited());
    }

    #[test]
    fn cnp_cuts_rate_and_raises_alpha() {
        let mut d = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        // alpha starts at 1.0, so the first cut halves the rate; alpha stays
        // at 1.0 ((1-g)*1 + g) until the alpha timer decays it.
        d.on_cnp(SimTime::from_us(100));
        assert_eq!(d.state().rate, LINE.mul_f64(0.5));
        assert!((d.alpha() - 1.0).abs() < 1e-9);
        assert_eq!(d.target_rate(), LINE);
        assert_eq!(d.decrease_events, 1);
    }

    #[test]
    fn decreases_are_rate_limited_by_td() {
        let cfg = DcqcnConfig::vendor_default(LINE)
            .with_timers(Duration::from_us(300), Duration::from_us(50));
        let mut d = Dcqcn::new(cfg, LINE);
        d.on_cnp(SimTime::from_us(100));
        let r1 = d.state().rate;
        // A second CNP 10 us later is inside Td=50us: no further decrease.
        d.on_cnp(SimTime::from_us(110));
        assert_eq!(d.state().rate, r1);
        assert_eq!(d.decrease_events, 1);
        // A CNP after Td elapses does decrease again.
        d.on_cnp(SimTime::from_us(151));
        assert!(d.state().rate < r1);
        assert_eq!(d.decrease_events, 2);
    }

    #[test]
    fn fast_recovery_converges_back_to_target() {
        let mut d = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        d.on_cnp(SimTime::from_us(10));
        let after_cut = d.state().rate;
        assert_eq!(d.target_rate(), LINE);
        // Run the timer wheel until five rate-increase events (fast
        // recovery) have fired; each halves the gap to Rt.
        let mut now = SimTime::from_us(10);
        let mut guard = 0;
        while d.increase_events < 5 {
            now = d.next_timer().unwrap().max(now);
            d.on_timer(now);
            guard += 1;
            assert!(guard < 1000, "timer loop did not make progress");
        }
        let recovered = d.state().rate;
        assert!(recovered > after_cut);
        // After 5 halvings the rate is within ~4% of line rate.
        assert!(recovered.as_bps() as f64 > 0.96 * LINE.as_bps() as f64);
    }

    #[test]
    fn additive_and_hyper_increase_after_fast_recovery() {
        let cfg = DcqcnConfig {
            timer_ti: Duration::from_us(55),
            ..DcqcnConfig::vendor_default(LINE)
        };
        let mut d = Dcqcn::new(cfg, LINE);
        d.on_cnp(SimTime::from_us(10));
        // Exhaust fast recovery via the timer, then additive increases keep
        // pushing the target rate (clamped at line rate).
        let mut now = SimTime::from_us(10);
        let mut guard = 0;
        while d.increase_events < 20 {
            now = d.next_timer().unwrap().max(now);
            d.on_timer(now);
            guard += 1;
            assert!(guard < 10_000, "timer loop did not make progress");
        }
        let r = d.state().rate.as_bps() as f64;
        assert!(
            r > 0.999 * LINE.as_bps() as f64,
            "should recover to ~line rate, got {}",
            d.state().rate
        );
        assert!(d.increase_events >= 20);
        assert_eq!(d.target_rate(), LINE, "target rate is clamped at line rate");
    }

    #[test]
    fn hyper_increase_when_both_stages_exceed_threshold() {
        // A tiny byte counter lets ACKed bytes advance the byte stage past F
        // as well, after which increases use the hyper step.
        let cfg = DcqcnConfig {
            byte_counter: 1_000,
            rai: Bandwidth::from_mbps(1),
            rhai: Bandwidth::from_gbps(1),
            timer_ti: Duration::from_us(10),
            ..DcqcnConfig::vendor_default(LINE)
        };
        let mut d = Dcqcn::new(cfg, LINE);
        d.on_cnp(SimTime::from_us(10));
        // Force the current rate well below target so increases are visible.
        d.on_cnp(SimTime::from_us(20));
        d.on_cnp(SimTime::from_us(30));
        let int = IntHeader::new();
        // Drive both stage counters beyond the threshold: the 10 us increase
        // timer advances the time stage, each 1 KB ACK advances the byte
        // stage.
        let mut now = SimTime::from_us(30);
        for i in 0..8u64 {
            now = d.next_timer().unwrap().max(now);
            d.on_timer(now);
            d.on_timer(now + Duration::from_us(10));
            now += Duration::from_us(10);
            d.on_ack(&ack(31 + i, 1_000, false, &int));
        }
        let before = d.target_rate();
        d.on_ack(&ack(40, 1_000, false, &int));
        let after = d.target_rate();
        // The jump must be the hyper step (1 Gbps), not the 1 Mbps AI step.
        assert!(
            after.as_bps().saturating_sub(before.as_bps()) >= 500_000_000 || after == LINE,
            "expected hyper increase, {before} -> {after}"
        );
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        d.on_cnp(SimTime::from_us(10));
        let alpha_after_cnp = d.alpha();
        let mut now = SimTime::from_us(10);
        for _ in 0..50 {
            now = d.next_timer().unwrap().max(now);
            d.on_timer(now);
        }
        assert!(d.alpha() < alpha_after_cnp * 0.9);
    }

    #[test]
    fn byte_counter_triggers_increase() {
        let cfg = DcqcnConfig {
            byte_counter: 100_000,
            ..DcqcnConfig::vendor_default(LINE)
        };
        let mut d = Dcqcn::new(cfg, LINE);
        d.on_cnp(SimTime::from_us(10));
        let after_cut = d.state().rate;
        let int = IntHeader::new();
        // 150 KB of ACKed data crosses the 100 KB byte counter once.
        d.on_ack(&ack(20, 150_000, false, &int));
        assert!(d.state().rate > after_cut);
        assert_eq!(d.increase_events, 1);
    }

    #[test]
    fn ecn_ack_mode_reacts_without_cnp() {
        let cfg = DcqcnConfig {
            react_to_ecn_ack: true,
            ..DcqcnConfig::vendor_default(LINE)
        };
        let mut d = Dcqcn::new(cfg, LINE);
        let int = IntHeader::new();
        d.on_ack(&ack(30, 1000, true, &int));
        assert!(d.state().rate < LINE);
    }

    #[test]
    fn rate_never_leaves_bounds() {
        let mut d = Dcqcn::new(DcqcnConfig::vendor_default(LINE), LINE);
        let int = IntHeader::new();
        let mut now_us = 10;
        for i in 0..2000u64 {
            now_us += 1 + (i % 7);
            if i % 3 == 0 {
                d.on_cnp(SimTime::from_us(now_us));
            }
            d.on_ack(&ack(now_us, 1000 + (i % 5) * 500, i % 11 == 0, &int));
            if let Some(t) = d.next_timer() {
                if t <= SimTime::from_us(now_us) {
                    d.on_timer(SimTime::from_us(now_us));
                }
            }
            let r = d.state().rate;
            assert!(r >= DcqcnConfig::vendor_default(LINE).min_rate);
            assert!(r <= LINE);
        }
    }

    #[test]
    fn preset_constructors_match_figure2_settings() {
        let paper = DcqcnConfig::paper_timers(LINE);
        assert_eq!(paper.timer_ti, Duration::from_us(55));
        assert_eq!(paper.rate_decrease_interval_td, Duration::from_us(50));
        let cons = DcqcnConfig::conservative_timers(LINE);
        assert_eq!(cons.timer_ti, Duration::from_us(900));
        assert_eq!(cons.rate_decrease_interval_td, Duration::from_us(4));
        // AI step scales with line rate: 25G → 40 Mbps, 100G → 160 Mbps.
        assert_eq!(
            DcqcnConfig::vendor_default(LINE).rai,
            Bandwidth::from_mbps(40)
        );
        assert_eq!(
            DcqcnConfig::vendor_default(Bandwidth::from_gbps(100)).rai,
            Bandwidth::from_mbps(160)
        );
    }
}
