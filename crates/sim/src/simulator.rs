//! The top-level simulator: owns the nodes, the event loop and the raw
//! measurement output.

use crate::config::SimConfig;
use crate::engine::{Effects, Event, EventQueue};
use crate::fault::{FaultConfig, FaultTimeline, LinkDownMode, Transition, FAULT_RNG_STREAM};
use crate::host::Host;
use crate::output::SimOutput;
use crate::rng::SplitMix64;
use crate::switch::Switch;
use hpcc_topology::{NodeKind, TopologySpec};
use hpcc_types::{Duration, FlowSpec, NodeId, PortId, SimTime};

/// A node in the simulated network. Hosts dominate the node vector in every
/// fat-tree, so the size gap between the variants wastes padding only on the
/// switch minority; boxing `Host` would add a pointer chase to the per-ACK
/// hot path instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Node {
    Host(Host),
    Switch(Switch),
}

/// Runtime state of fault injection. Allocated only when the run has a
/// non-empty [`FaultConfig`], so fault-free runs carry a `None` and execute
/// the exact legacy event sequence.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    /// Compiled transition schedule.
    pub(crate) timeline: FaultTimeline,
    /// The plan the timeline was compiled from (window parameters are read
    /// back when a transition fires).
    pub(crate) plan: FaultConfig,
    /// Directed endpoints of every topology link, in link order:
    /// `((a, port on a), (b, port on b))`.
    pub(crate) endpoints: Vec<((NodeId, PortId), (NodeId, PortId))>,
    /// Number of host endpoints (0..=2) per link, for NIC-downtime
    /// accounting.
    pub(crate) host_ends: Vec<u8>,
    /// When each link last went down (`None` = currently up).
    pub(crate) down_since: Vec<Option<SimTime>>,
    /// Accumulated downtime per link.
    pub(crate) downtime: Vec<Duration>,
    /// Accumulated host-NIC downtime (host endpoints of downed links).
    pub(crate) host_nic_downtime: Duration,
    /// Number of currently-open fault windows (outages, degradations and
    /// straggles); goodput is attributed to the fault window while > 0.
    pub(crate) active: u32,
    /// Transitions applied so far.
    pub(crate) events_applied: u64,
}

impl FaultRuntime {
    pub(crate) fn new(plan: &FaultConfig, topo: &TopologySpec) -> FaultRuntime {
        // Recover each link's two directed (node, port) endpoints by
        // replaying the builder's dense port assignment: ports are numbered
        // per node in link-insertion order.
        let mut next_port = vec![0u32; topo.node_count()];
        let mut endpoints = Vec::with_capacity(topo.links().len());
        let mut host_ends = Vec::with_capacity(topo.links().len());
        for l in topo.links() {
            let pa = PortId(next_port[l.a.index()]);
            next_port[l.a.index()] += 1;
            let pb = PortId(next_port[l.b.index()]);
            next_port[l.b.index()] += 1;
            endpoints.push(((l.a, pa), (l.b, pb)));
            host_ends.push(
                matches!(topo.kind(l.a), NodeKind::Host) as u8
                    + matches!(topo.kind(l.b), NodeKind::Host) as u8,
            );
        }
        let n_links = topo.links().len();
        FaultRuntime {
            timeline: FaultTimeline::compile(plan),
            plan: plan.clone(),
            endpoints,
            host_ends,
            down_since: vec![None; n_links],
            downtime: vec![Duration::ZERO; n_links],
            host_nic_downtime: Duration::ZERO,
            active: 0,
            events_applied: 0,
        }
    }
}

/// A packet-level discrete-event simulation of one experiment.
///
/// ```
/// use hpcc_sim::{SimConfig, Simulator};
/// use hpcc_cc::CcAlgorithm;
/// use hpcc_topology::star;
/// use hpcc_types::{Bandwidth, Duration, FlowId, FlowSpec, SimTime};
///
/// let topo = star(4, Bandwidth::from_gbps(100), Duration::from_us(1));
/// let base_rtt = topo.suggested_base_rtt(1106);
/// let mut cfg = SimConfig::for_cc(CcAlgorithm::hpcc_default(), Bandwidth::from_gbps(100), base_rtt);
/// cfg.end_time = SimTime::from_ms(2);
/// let hosts = topo.hosts().to_vec();
/// let mut sim = Simulator::new(topo, cfg);
/// sim.add_flow(FlowSpec::new(FlowId(1), hosts[0], hosts[1], 100_000, SimTime::ZERO));
/// let out = sim.run();
/// assert_eq!(out.flows.len(), 1);
/// ```
pub struct Simulator {
    time: SimTime,
    events: EventQueue,
    nodes: Vec<Node>,
    topo: TopologySpec,
    cfg: SimConfig,
    out: SimOutput,
    flows: Vec<FlowSpec>,
    /// Per-flow receiver slot (dense index into the destination host's
    /// receiver table), assigned at registration; parallel to `flows`.
    dst_slots: Vec<u32>,
    /// Next receiver slot per node (only host entries are used).
    next_dst_slot: Vec<u32>,
    /// Events actually handled (events popped after the horizon are
    /// discarded, not processed).
    processed: u64,
    /// The reusable side-effect arena: cleared between events, never
    /// dropped, so the steady-state event loop allocates nothing.
    eff: Effects,
    /// Work stack of ports to kick (reused across events).
    kick_stack: Vec<(NodeId, PortId)>,
    /// Fault-injection runtime; `None` on healthy (legacy) runs.
    faults: Option<FaultRuntime>,
}

impl Simulator {
    /// Build a simulator for a topology and behavioural configuration.
    pub fn new(topo: TopologySpec, cfg: SimConfig) -> Self {
        let mut nodes = Vec::with_capacity(topo.node_count());
        for i in 0..topo.node_count() {
            let id = NodeId(i as u32);
            let node = match topo.kind(id) {
                NodeKind::Host => Node::Host(Host::new(id, topo.ports(id))),
                NodeKind::Switch => Node::Switch(Switch::new(id, topo.ports(id), &cfg)),
            };
            nodes.push(node);
        }
        let mut events = EventQueue::new();
        if let Some(interval) = cfg.queue_sample_interval {
            events.push(SimTime::ZERO + interval, Event::Sample);
        }
        if !cfg.trace_ports.is_empty() {
            events.push(SimTime::ZERO + cfg.trace_interval, Event::TraceSample);
        }
        let faults = match &cfg.faults {
            Some(plan) if !plan.is_empty() => {
                let runtime = FaultRuntime::new(plan, &topo);
                // Nodes touched by an iid-lossy degraded link get the
                // dedicated fault RNG stream (never the ECN-marking RNG).
                for d in &plan.degraded_links {
                    if d.loss > 0.0 {
                        let (ea, eb) = runtime.endpoints[d.link];
                        for (n, _) in [ea, eb] {
                            let rng = SplitMix64::new(
                                cfg.seed
                                    ^ FAULT_RNG_STREAM
                                    ^ (n.0 as u64).wrapping_mul(0x9E3779B97F4A7C15),
                            );
                            match &mut nodes[n.index()] {
                                Node::Host(h) => h.set_fault_rng(rng),
                                Node::Switch(s) => s.set_fault_rng(rng),
                            }
                        }
                    }
                }
                if let Some(first) = runtime.timeline.next_time() {
                    events.push(first, Event::FaultTransition);
                }
                Some(runtime)
            }
            _ => None,
        };
        let mut out = SimOutput::new(1024, cfg.flow_throughput_bin.unwrap_or(Duration::ZERO));
        // Per-class histograms exist only on the multi-class path, so the
        // legacy single-class output (and its digest) is byte-identical.
        if cfg.queueing.data_classes > 1 {
            out.class_queue_histograms = vec![Vec::new(); cfg.queueing.data_classes as usize];
        }
        let node_count = topo.node_count();
        Simulator {
            time: SimTime::ZERO,
            events,
            nodes,
            topo,
            cfg,
            out,
            flows: Vec::new(),
            dst_slots: Vec::new(),
            next_dst_slot: vec![0; node_count],
            processed: 0,
            eff: Effects::default(),
            kick_stack: Vec::new(),
            faults,
        }
    }

    /// The topology this simulator runs on.
    pub fn topology(&self) -> &TopologySpec {
        &self.topo
    }

    /// The configuration this simulator runs with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Register one flow; it starts at `spec.start`.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        let idx = self.flows.len();
        self.flows.push(spec);
        let slot = &mut self.next_dst_slot[spec.dst.index()];
        self.dst_slots.push(*slot);
        *slot += 1;
        self.events.push(spec.start, Event::FlowStart(idx));
    }

    /// Register many flows.
    pub fn add_flows<I: IntoIterator<Item = FlowSpec>>(&mut self, specs: I) {
        for s in specs {
            self.add_flow(s);
        }
    }

    /// Number of flows registered.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Run until the event queue drains or the configured horizon is passed,
    /// then return the collected measurements.
    pub fn run(mut self) -> SimOutput {
        while self.step() {}
        self.finalize()
    }

    /// Process one event. Returns `false` when the simulation is over.
    fn step(&mut self) -> bool {
        let Some((t, ev)) = self.events.pop() else {
            return false;
        };
        if t > self.cfg.end_time {
            return false;
        }
        self.processed += 1;
        self.time = t;
        self.eff.clear();
        match ev {
            Event::FlowStart(idx) => {
                let spec = self.flows[idx];
                let dst_slot = self.dst_slots[idx];
                if let Node::Host(h) = &mut self.nodes[spec.src.index()] {
                    h.flow_start(t, spec, dst_slot, &self.cfg, &mut self.eff);
                }
            }
            Event::PortReady { node, port } => {
                match &mut self.nodes[node.index()] {
                    Node::Host(h) => h.port_ready(),
                    Node::Switch(s) => s.port_ready(port),
                }
                self.eff.kicks.push((node, port));
            }
            Event::PacketArrive { node, port, packet } => match &mut self.nodes[node.index()] {
                Node::Host(h) => h.handle_arrival(t, port, packet, &self.cfg, &mut self.eff),
                Node::Switch(s) => {
                    s.handle_arrival(t, port, packet, &self.cfg, &self.topo, &mut self.eff)
                }
            },
            Event::HostWake { node } => {
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_wake(t, &mut self.eff);
                }
            }
            Event::CcTimer { node, slot } => {
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_cc_timer(t, slot, &self.cfg, &mut self.eff);
                }
            }
            Event::RtoCheck { node, slot } => {
                if let Node::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_rto(t, slot, &self.cfg, &mut self.eff);
                }
            }
            Event::Sample => {
                let classes = self.cfg.queueing.data_classes;
                for node in &self.nodes {
                    if let Node::Switch(s) = node {
                        for port in s.ports() {
                            self.out.record_queue_sample(port.data_queue_bytes());
                            if classes > 1 {
                                for c in 0..classes {
                                    self.out.record_class_queue_sample(
                                        c as usize,
                                        port.class_queue_bytes(c),
                                    );
                                }
                            }
                        }
                    }
                }
                if let Some(interval) = self.cfg.queue_sample_interval {
                    let next = t + interval;
                    if next <= self.cfg.end_time {
                        self.eff.events.push((next, Event::Sample));
                    }
                }
            }
            Event::TraceSample => {
                for i in 0..self.cfg.trace_ports.len() {
                    let (n, p) = self.cfg.trace_ports[i];
                    let qlen = match &self.nodes[n.index()] {
                        Node::Switch(s) => s.ports()[p.index()].data_queue_bytes(),
                        Node::Host(_) => 0,
                    };
                    self.out
                        .port_traces
                        .entry((n, p))
                        .or_default()
                        .push((t, qlen));
                }
                let next = t + self.cfg.trace_interval;
                if next <= self.cfg.end_time {
                    self.eff.events.push((next, Event::TraceSample));
                }
            }
            Event::FaultTransition => self.fault_transition(t),
        }
        self.apply_effects();
        true
    }

    /// Apply every fault transition due at `now` to the affected nodes, then
    /// schedule the next [`Event::FaultTransition`]. Only reachable on runs
    /// with a fault config.
    fn fault_transition(&mut self, now: SimTime) {
        let Some(fr) = self.faults.as_mut() else {
            return;
        };
        for (_, tr) in fr.timeline.due(now) {
            fr.events_applied += 1;
            match tr {
                Transition::LinkDown { link, mode } => {
                    let drop_mode = mode == LinkDownMode::Drop;
                    let (ea, eb) = fr.endpoints[link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_down(true, drop_mode),
                            Node::Switch(s) => s.set_link_down(p, true, drop_mode),
                        }
                    }
                    fr.down_since[link] = Some(now);
                    fr.active += 1;
                }
                Transition::LinkUp { link } => {
                    let (ea, eb) = fr.endpoints[link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_down(false, false),
                            Node::Switch(s) => s.set_link_down(p, false, false),
                        }
                        // Kick so a paused egress resumes immediately.
                        self.eff.kicks.push((n, p));
                    }
                    if let Some(since) = fr.down_since[link].take() {
                        let dt = now.saturating_since(since);
                        fr.downtime[link] += dt;
                        fr.host_nic_downtime += dt * fr.host_ends[link] as u64;
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
                Transition::DegradeOn { idx } => {
                    let d = fr.plan.degraded_links[idx];
                    let (ea, eb) = fr.endpoints[d.link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_degraded(d.extra_delay, d.loss),
                            Node::Switch(s) => s.set_link_degraded(p, d.extra_delay, d.loss),
                        }
                    }
                    fr.active += 1;
                }
                Transition::DegradeOff { idx } => {
                    let d = fr.plan.degraded_links[idx];
                    let (ea, eb) = fr.endpoints[d.link];
                    for (n, p) in [ea, eb] {
                        match &mut self.nodes[n.index()] {
                            Node::Host(h) => h.set_link_degraded(Duration::ZERO, 0.0),
                            Node::Switch(s) => s.set_link_degraded(p, Duration::ZERO, 0.0),
                        }
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
                Transition::StraggleOn { idx } => {
                    let s = fr.plan.stragglers[idx];
                    let id = self.topo.hosts()[s.host];
                    let line = self.topo.ports(id)[0].bandwidth;
                    if let Node::Host(h) = &mut self.nodes[id.index()] {
                        h.set_straggle(Some(line.mul_f64(s.rate_factor)));
                    }
                    fr.active += 1;
                }
                Transition::StraggleOff { idx } => {
                    let s = fr.plan.stragglers[idx];
                    let id = self.topo.hosts()[s.host];
                    if let Node::Host(h) = &mut self.nodes[id.index()] {
                        h.set_straggle(None);
                    }
                    fr.active = fr.active.saturating_sub(1);
                }
            }
        }
        if let Some(next) = fr.timeline.next_time() {
            self.eff.events.push((next, Event::FaultTransition));
        }
    }

    /// Apply the side effects accumulated in the arena by one event, then
    /// work the transmission kick stack (LIFO, matching the original
    /// recursive kick semantics) until it drains, reusing the same arena for
    /// every `try_transmit` call.
    fn apply_effects(&mut self) {
        self.absorb();
        debug_assert!(self.kick_stack.is_empty());
        self.kick_stack.append(&mut self.eff.kicks);
        while let Some((n, p)) = self.kick_stack.pop() {
            match &mut self.nodes[n.index()] {
                Node::Host(h) => h.try_transmit(self.time, &self.cfg, &mut self.eff),
                Node::Switch(s) => s.try_transmit(self.time, p, &self.cfg, &mut self.eff),
            }
            self.kick_stack.append(&mut self.eff.kicks);
            self.absorb();
        }
    }

    /// Drain the arena's buffers into the event queue and the output
    /// records. Leaves the arena empty (but with its capacity and packet
    /// pool intact).
    fn absorb(&mut self) {
        for (t, e) in self.eff.events.drain(..) {
            self.events.push(t, e);
        }
        for rec in self.eff.completions.drain(..) {
            self.out.flows.push(rec);
        }
        for ev in self.eff.pfc_events.drain(..) {
            self.out.record_pfc_event(ev);
        }
        let fault_active = self.faults.as_ref().is_some_and(|fr| fr.active > 0);
        for (f, b) in self.eff.goodput.drain(..) {
            if fault_active {
                self.out.goodput_during_faults += b;
            }
            self.out.record_goodput(f, self.time, b);
        }
        self.out.packets_delivered += self.eff.packets_delivered;
        self.out.packets_sent += self.eff.packets_sent;
        self.eff.packets_delivered = 0;
        self.eff.packets_sent = 0;
    }

    /// Close out per-node accounting and return the measurements.
    fn finalize(mut self) -> SimOutput {
        let now = self.time;
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Switch(s) => {
                    s.finalize(now);
                    let (fp, fb) = s.fault_drops();
                    self.out.fault_dropped_packets += fp;
                    self.out.fault_dropped_bytes += fb;
                    for (pi, port) in s.ports().iter().enumerate() {
                        self.out
                            .ports
                            .insert((id, PortId(pi as u32)), port.counters);
                    }
                }
                Node::Host(h) => {
                    let unfinished = h.finalize(now);
                    self.out.unfinished_flows += unfinished;
                    let (fp, fb) = h.fault_drops();
                    self.out.fault_dropped_packets += fp;
                    self.out.fault_dropped_bytes += fb;
                    self.out.ports.insert((id, PortId(0)), h.counters);
                }
            }
        }
        if let Some(mut fr) = self.faults.take() {
            // Close outage intervals still open at the horizon.
            for link in 0..fr.down_since.len() {
                if let Some(since) = fr.down_since[link].take() {
                    let dt = now.saturating_since(since);
                    fr.downtime[link] += dt;
                    fr.host_nic_downtime += dt * fr.host_ends[link] as u64;
                }
            }
            self.out.fault_events = fr.events_applied;
            self.out.host_nic_downtime = fr.host_nic_downtime;
            self.out.link_downtime = fr
                .downtime
                .iter()
                .enumerate()
                .filter(|(_, d)| !d.is_zero())
                .map(|(i, &d)| (i, d))
                .collect();
        }
        self.out.elapsed = now;
        self.out.events_processed = self.processed;
        self.out.peak_event_queue = self.events.peak_len() as u64;
        self.out
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nodes", &self.nodes.len())
            .field("flows", &self.flows.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowControlMode;
    use hpcc_cc::{CcAlgorithm, DcqcnConfig};
    use hpcc_topology::{star, testbed_pod};
    use hpcc_types::{Bandwidth, FlowId};

    const LINE: Bandwidth = Bandwidth::from_gbps(100);

    fn star_cfg(cc: CcAlgorithm, n_hosts: usize) -> (TopologySpec, SimConfig) {
        let topo = star(n_hosts, LINE, Duration::from_us(1));
        let base_rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(cc, LINE, base_rtt);
        cfg.end_time = SimTime::from_ms(20);
        (topo, cfg)
    }

    #[test]
    fn single_flow_completes_with_sane_fct() {
        let (topo, cfg) = star_cfg(CcAlgorithm::hpcc_default(), 2);
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        let size = 1_000_000u64;
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[1],
            size,
            SimTime::ZERO,
        ));
        let out = sim.run();
        assert_eq!(out.flows.len(), 1);
        assert_eq!(out.unfinished_flows, 0);
        let fct = out.flows[0].fct();
        // Ideal: 1000 packets * 1106 B at 100 Gbps ≈ 88.5 us, plus the ~4 us
        // RTT and per-hop store-and-forward. HPCC's 95% target utilization
        // costs a further ~5%.
        assert!(fct >= Duration::from_us(88), "too fast: {fct}");
        assert!(fct <= Duration::from_us(140), "too slow: {fct}");
        assert_eq!(out.total_drops(), 0);
        assert!(out.packets_sent >= 1000);
        assert_eq!(out.packets_delivered, out.packets_sent);
    }

    #[test]
    fn hpcc_keeps_queue_near_zero_in_two_to_one() {
        let (topo, mut cfg) = star_cfg(CcAlgorithm::hpcc_default(), 3);
        cfg.queue_sample_interval = Some(Duration::from_us(1));
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        // Two 2 MB flows into host 2.
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[2],
            2_000_000,
            SimTime::ZERO,
        ));
        sim.add_flow(FlowSpec::new(
            FlowId(2),
            hosts[1],
            hosts[2],
            2_000_000,
            SimTime::ZERO,
        ));
        let out = sim.run();
        assert_eq!(out.flows.len(), 2);
        // HPCC's 99th-percentile queue stays far below one BDP (~50 KB here);
        // the paper reports tens of KB for much larger fan-ins.
        let q99 = out.queue_percentile(99.0).unwrap();
        assert!(q99 < 60_000, "99p queue {q99} B too large for HPCC");
        assert_eq!(out.total_drops(), 0);
        assert_eq!(out.total_pause_duration(), Duration::ZERO);
    }

    #[test]
    fn dcqcn_builds_bigger_queues_than_hpcc() {
        let run = |cc: CcAlgorithm| {
            let (topo, mut cfg) = star_cfg(cc, 5);
            cfg.queue_sample_interval = Some(Duration::from_us(1));
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            for i in 0..4u64 {
                sim.add_flow(FlowSpec::new(
                    FlowId(i + 1),
                    hosts[i as usize],
                    hosts[4],
                    2_000_000,
                    SimTime::ZERO,
                ));
            }
            sim.run()
        };
        let hpcc = run(CcAlgorithm::hpcc_default());
        let dcqcn = run(CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)));
        assert_eq!(hpcc.flows.len(), 4);
        assert_eq!(dcqcn.flows.len(), 4);
        // Compare the time-average queue occupancy over the whole run: DCQCN
        // keeps a standing queue near its ECN threshold while the transfer
        // lasts, HPCC only has the first-RTT burst.
        let mean_queue = |out: &SimOutput| {
            let total: u64 = out.queue_histogram.iter().sum();
            let weighted: f64 = out
                .queue_histogram
                .iter()
                .enumerate()
                .map(|(i, c)| i as f64 * out.queue_histogram_bin as f64 * *c as f64)
                .sum();
            weighted / total.max(1) as f64
        };
        let q_hpcc = mean_queue(&hpcc);
        let q_dcqcn = mean_queue(&dcqcn);
        assert!(
            q_dcqcn > 3.0 * q_hpcc.max(1.0),
            "DCQCN mean queue ({q_dcqcn:.0} B) should far exceed HPCC's ({q_hpcc:.0} B)"
        );
        // And DCQCN's worst case is far above one BDP while HPCC's stays in
        // the same order as a BDP burst.
        assert!(dcqcn.max_queue_bytes() > 300_000);
    }

    #[test]
    fn incast_under_pfc_never_drops_and_under_lossy_gbn_recovers() {
        // 8-to-1 incast with a deliberately small buffer.
        let run = |mode: FlowControlMode| {
            let (topo, mut cfg) =
                star_cfg(CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)), 9);
            cfg.flow_control = mode;
            cfg.buffer_bytes = 500_000;
            cfg.end_time = SimTime::from_ms(30);
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            for i in 0..8u64 {
                sim.add_flow(FlowSpec::new(
                    FlowId(i + 1),
                    hosts[i as usize],
                    hosts[8],
                    500_000,
                    SimTime::from_us(i),
                ));
            }
            sim.run()
        };
        let lossless = run(FlowControlMode::Lossless);
        assert_eq!(lossless.total_drops(), 0, "PFC must prevent drops");
        assert!(
            lossless.total_pause_duration() > Duration::ZERO,
            "incast should trigger PFC"
        );
        assert_eq!(lossless.flows.len(), 8);

        let lossy = run(FlowControlMode::LossyGoBackN);
        assert!(
            lossy.total_drops() > 0,
            "small buffer without PFC must drop"
        );
        assert_eq!(
            lossy.flows.len(),
            8,
            "go-back-N must still complete all flows"
        );
        assert_eq!(lossy.total_pause_duration(), Duration::ZERO);

        let irn = run(FlowControlMode::LossyIrn);
        assert_eq!(irn.flows.len(), 8, "IRN must still complete all flows");
        // IRN retransmits selectively, so it sends no more than go-back-N.
        assert!(irn.packets_sent <= lossy.packets_sent);
    }

    #[test]
    fn hpcc_incast_keeps_queue_below_pfc_threshold() {
        let (topo, mut cfg) = star_cfg(CcAlgorithm::hpcc_default(), 17);
        cfg.queue_sample_interval = Some(Duration::from_us(1));
        cfg.end_time = SimTime::from_ms(10);
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        for i in 0..16u64 {
            sim.add_flow(FlowSpec::new(
                FlowId(i + 1),
                hosts[i as usize],
                hosts[16],
                500_000,
                SimTime::ZERO,
            ));
        }
        let out = sim.run();
        assert_eq!(out.flows.len(), 16);
        // No PFC pauses with HPCC even under 16-to-1 incast (the paper's
        // §5.3 observation).
        assert_eq!(out.total_pause_duration(), Duration::ZERO);
        assert_eq!(out.total_drops(), 0);
    }

    #[test]
    fn events_past_the_horizon_are_not_counted_as_processed() {
        // The only pending event (the flow start) lies beyond the horizon, so
        // the run terminates by discarding it. A previous version counted the
        // discarded event because the queue incremented its processed counter
        // inside pop(), before the simulator's horizon check.
        let (topo, mut cfg) = star_cfg(CcAlgorithm::hpcc_default(), 2);
        cfg.end_time = SimTime::from_us(10);
        cfg.queue_sample_interval = None;
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[1],
            1_000,
            SimTime::from_us(20),
        ));
        let out = sim.run();
        assert_eq!(out.events_processed, 0, "discarded event must not count");
        assert!(out.flows.is_empty(), "the flow never started");

        // A horizon cutting a busy run mid-flight still only counts handled
        // events: the run that is stopped by a beyond-horizon event processes
        // strictly fewer events than the run that completes the flow.
        let run_until = |end: SimTime| {
            let (topo, mut cfg) = star_cfg(CcAlgorithm::hpcc_default(), 2);
            cfg.end_time = end;
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            sim.add_flow(FlowSpec::new(
                FlowId(1),
                hosts[0],
                hosts[1],
                1_000_000,
                SimTime::ZERO,
            ));
            sim.run()
        };
        let cut = run_until(SimTime::from_us(30));
        let full = run_until(SimTime::from_ms(20));
        assert!(cut.events_processed > 0);
        assert!(cut.events_processed < full.events_processed);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (topo, cfg) = star_cfg(CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(LINE)), 4);
            let hosts = topo.hosts().to_vec();
            let mut sim = Simulator::new(topo, cfg);
            for i in 0..3u64 {
                sim.add_flow(FlowSpec::new(
                    FlowId(i + 1),
                    hosts[i as usize],
                    hosts[3],
                    1_000_000,
                    SimTime::from_us(5 * i),
                ));
            }
            sim.run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(b.flows.iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.packets_sent, b.packets_sent);
    }

    #[test]
    fn cross_rack_flows_work_on_the_testbed_pod() {
        let topo = testbed_pod(Duration::from_us(1));
        let base_rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(
            CcAlgorithm::hpcc_default(),
            Bandwidth::from_gbps(25),
            base_rtt,
        );
        cfg.end_time = SimTime::from_ms(30);
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        // Host 0 (rack 0) to host 31 (rack 3): crosses ToR→Agg→ToR.
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[31],
            2_000_000,
            SimTime::ZERO,
        ));
        // And a same-rack flow.
        sim.add_flow(FlowSpec::new(
            FlowId(2),
            hosts[8],
            hosts[9],
            2_000_000,
            SimTime::ZERO,
        ));
        let out = sim.run();
        assert_eq!(out.flows.len(), 2);
        assert_eq!(out.unfinished_flows, 0);
        let cross = out.flows.iter().find(|f| f.id == FlowId(1)).unwrap();
        let local = out.flows.iter().find(|f| f.id == FlowId(2)).unwrap();
        // Both are bandwidth-bound at 25 Gbps ≈ 680 us for 2 MB + overheads;
        // the cross-rack flow pays a slightly longer RTT.
        assert!(cross.fct() > local.fct());
        assert!(local.fct() > Duration::from_us(600));
        assert!(cross.fct() < Duration::from_ms(2));
    }

    #[test]
    fn goodput_and_trace_outputs_are_populated() {
        let (topo, mut cfg) = star_cfg(CcAlgorithm::hpcc_default(), 3);
        let switch = topo.switches()[0];
        let hosts = topo.hosts().to_vec();
        // Trace the egress towards host 2 and bin goodput at 100 us.
        let egress_to_h2 = topo.next_hops(switch, hosts[2])[0];
        cfg.trace_ports = vec![(switch, egress_to_h2)];
        cfg.trace_interval = Duration::from_us(5);
        cfg.flow_throughput_bin = Some(Duration::from_us(100));
        let mut sim = Simulator::new(topo, cfg);
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[2],
            3_000_000,
            SimTime::ZERO,
        ));
        sim.add_flow(FlowSpec::new(
            FlowId(2),
            hosts[1],
            hosts[2],
            3_000_000,
            SimTime::ZERO,
        ));
        let out = sim.run();
        let trace = &out.port_traces[&(switch, egress_to_h2)];
        assert!(trace.len() > 10);
        assert!(
            trace.windows(2).all(|w| w[0].0 < w[1].0),
            "trace times increase"
        );
        let g1 = &out.flow_goodput[&FlowId(1)];
        let total1: u64 = g1.iter().sum();
        assert_eq!(total1, 3_000_000);
        let g2: u64 = out.flow_goodput[&FlowId(2)].iter().sum();
        assert_eq!(g2, 3_000_000);
    }

    #[test]
    fn int_headers_reach_back_to_senders_through_multiple_hops() {
        let topo = testbed_pod(Duration::from_us(1));
        let base_rtt = topo.suggested_base_rtt(1106);
        let mut cfg = SimConfig::for_cc(
            CcAlgorithm::hpcc_default(),
            Bandwidth::from_gbps(25),
            base_rtt,
        );
        cfg.end_time = SimTime::from_ms(10);
        cfg.queue_sample_interval = Some(Duration::from_us(2));
        let hosts = topo.hosts().to_vec();
        let mut sim = Simulator::new(topo, cfg);
        // Two cross-rack senders share the ToR uplink of the receiver's rack,
        // so HPCC must throttle below line rate without building deep queues.
        sim.add_flow(FlowSpec::new(
            FlowId(1),
            hosts[0],
            hosts[16],
            1_000_000,
            SimTime::ZERO,
        ));
        sim.add_flow(FlowSpec::new(
            FlowId(2),
            hosts[8],
            hosts[17],
            1_000_000,
            SimTime::ZERO,
        ));
        let out = sim.run();
        assert_eq!(out.flows.len(), 2);
        assert_eq!(out.total_drops(), 0);
        assert!(out.queue_percentile(99.9).unwrap() < 200_000);
    }
}
