//! Flow descriptions produced by workload generators and consumed by the
//! simulator and the statistics crate.

use crate::ids::{FlowId, NodeId};
use crate::time::SimTime;

/// Application-level priority of a flow (all experiments in the paper use a
/// single data class, but the type keeps the door open for PIAS-style
/// multi-queue comparisons).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FlowPriority {
    /// Regular data flow.
    #[default]
    Normal,
    /// Latency-sensitive flow (e.g. the "mice" of Figure 9e/9f).
    LatencySensitive,
}

/// A single flow to be injected into the simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSpec {
    /// Unique identifier.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Flow size in bytes. A size of zero models the paper's "0 byte" RPC
    /// bucket and is carried as a single header-only packet.
    pub size: u64,
    /// Time at which the sender learns about the flow and starts transmitting
    /// (at line rate, per the RDMA model).
    pub start: SimTime,
    /// Application priority tag.
    pub priority: FlowPriority,
}

impl FlowSpec {
    /// Construct a flow spec with [`FlowPriority::Normal`].
    pub fn new(id: FlowId, src: NodeId, dst: NodeId, size: u64, start: SimTime) -> Self {
        FlowSpec {
            id,
            src,
            dst,
            size,
            start,
            priority: FlowPriority::Normal,
        }
    }

    /// Number of data packets this flow needs with the given MTU payload.
    pub fn packet_count(&self, mtu_payload: u64) -> u64 {
        if self.size == 0 {
            1
        } else {
            self.size.div_ceil(mtu_payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up_and_handles_zero() {
        let f = FlowSpec::new(FlowId(1), NodeId(0), NodeId(1), 2500, SimTime::ZERO);
        assert_eq!(f.packet_count(1000), 3);
        let exact = FlowSpec::new(FlowId(2), NodeId(0), NodeId(1), 3000, SimTime::ZERO);
        assert_eq!(exact.packet_count(1000), 3);
        let zero = FlowSpec::new(FlowId(3), NodeId(0), NodeId(1), 0, SimTime::ZERO);
        assert_eq!(zero.packet_count(1000), 1);
    }

    #[test]
    fn default_priority_is_normal() {
        let f = FlowSpec::new(FlowId(1), NodeId(0), NodeId(1), 100, SimTime::ZERO);
        assert_eq!(f.priority, FlowPriority::Normal);
    }
}
