//! Regenerate Figure 11 (FB_Hadoop on the Clos fabric, six schemes).
//! Usage: `cargo run --release -p hpcc-bench --bin fig11 [duration_ms] [load] [incast 0/1] [paper_scale 0/1]`
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ms = hpcc_bench::arg_or(&args, 1, 15u64);
    let load = hpcc_bench::arg_or(&args, 2, 0.3f64);
    let incast = hpcc_bench::arg_or(&args, 3, 1u8) != 0;
    let paper = hpcc_bench::arg_or(&args, 4, 0u8) != 0;
    print!("{}", hpcc_bench::figures::fig11(ms, load, incast, paper));
}
