//! Flow-completion-time slowdown analysis.
//!
//! "FCT slowdown means a flow's actual FCT normalized by its ideal FCT when
//! the network only has this flow" (§2.3, footnote 1). The ideal FCT is the
//! standalone transfer time: one-way base delay plus the serialization of
//! all the flow's packets (including headers and, when enabled, the INT
//! budget) at the host line rate.
//!
//! The paper reports slowdown percentiles per flow-size bucket; the bucket
//! edges here are exactly the x-axis labels of Figures 2/3/10 (WebSearch)
//! and Figure 11 (FB_Hadoop).

use crate::percentile::Percentiles;
use hpcc_types::{Bandwidth, Duration};

/// Per-flow record the analyzer consumes (kept minimal so any front-end can
/// produce it).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowFct {
    /// Flow size in bytes.
    pub size: u64,
    /// Measured flow completion time.
    pub fct: Duration,
}

/// Computes ideal FCTs and slowdowns.
#[derive(Clone, Copy, Debug)]
pub struct FctAnalyzer {
    /// Host NIC line rate (the standalone bottleneck).
    pub line_rate: Bandwidth,
    /// One-way base delay (half the base RTT).
    pub one_way_delay: Duration,
    /// Payload bytes per packet.
    pub mtu_payload: u64,
    /// Header (plus INT budget) bytes per packet.
    pub per_packet_overhead: u64,
}

impl FctAnalyzer {
    /// Analyzer for a network with the given line rate and base RTT, using
    /// the paper's 1 KB packets with 64 B header + 42 B INT budget.
    pub fn new(line_rate: Bandwidth, base_rtt: Duration, int_enabled: bool) -> Self {
        FctAnalyzer {
            line_rate,
            one_way_delay: base_rtt / 2,
            mtu_payload: 1000,
            per_packet_overhead: if int_enabled { 64 + 42 } else { 64 },
        }
    }

    /// The standalone ("ideal") FCT of a flow of `size` bytes.
    pub fn ideal_fct(&self, size: u64) -> Duration {
        let size = size.max(1);
        let packets = size.div_ceil(self.mtu_payload);
        let wire_bytes = size + packets * self.per_packet_overhead;
        self.one_way_delay + self.line_rate.tx_time(wire_bytes)
    }

    /// Slowdown of one measured flow (≥ 1 in a well-behaved network; we
    /// clamp at 1.0 to absorb rounding).
    pub fn slowdown(&self, flow: &FlowFct) -> f64 {
        let ideal = self.ideal_fct(flow.size).as_us_f64();
        (flow.fct.as_us_f64() / ideal).max(1.0)
    }

    /// Group flows into `buckets` and summarise the slowdown distribution of
    /// each bucket. Buckets without flows are returned with `stats: None`.
    pub fn bucketed_slowdowns(
        &self,
        flows: &[FlowFct],
        buckets: &[FctBucket],
    ) -> Vec<SizeBucketStats> {
        let mut per_bucket: Vec<Vec<f64>> = vec![Vec::new(); buckets.len()];
        for f in flows {
            if let Some(i) = buckets.iter().position(|b| f.size <= b.max_size) {
                per_bucket[i].push(self.slowdown(f));
            } else if let Some(last) = per_bucket.last_mut() {
                last.push(self.slowdown(f));
            }
        }
        buckets
            .iter()
            .zip(per_bucket)
            .map(|(b, v)| SizeBucketStats {
                bucket: *b,
                stats: Percentiles::of(&v),
            })
            .collect()
    }

    /// Overall slowdown percentiles of all flows.
    pub fn overall(&self, flows: &[FlowFct]) -> Option<Percentiles> {
        let v: Vec<f64> = flows.iter().map(|f| self.slowdown(f)).collect();
        Percentiles::of(&v)
    }

    /// Slowdown percentiles per group key (e.g. the flow-priority wire
    /// code), one entry per key present, ascending. The per-priority FCT
    /// breakdowns of multi-class scheduling studies ride on this.
    pub fn grouped(&self, flows: &[(u8, FlowFct)]) -> Vec<(u8, Option<Percentiles>)> {
        let mut keys: Vec<u8> = flows.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter()
            .map(|key| {
                let v: Vec<f64> = flows
                    .iter()
                    .filter(|(k, _)| *k == key)
                    .map(|(_, f)| self.slowdown(f))
                    .collect();
                (key, Percentiles::of(&v))
            })
            .collect()
    }
}

/// A flow-size bucket (inclusive upper edge) with a display label.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FctBucket {
    /// Largest flow size that falls into this bucket, in bytes.
    pub max_size: u64,
    /// Label used on the figure axis ("6.7K", "30M", …).
    pub label: &'static str,
}

/// Slowdown summary of one size bucket.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeBucketStats {
    /// The bucket this row describes.
    pub bucket: FctBucket,
    /// Percentile summary, `None` if no flows landed in the bucket.
    pub stats: Option<Percentiles>,
}

/// The WebSearch flow-size buckets of Figures 2/3/10.
pub fn websearch_buckets() -> Vec<FctBucket> {
    vec![
        FctBucket {
            max_size: 3_000,
            label: "<3K",
        },
        FctBucket {
            max_size: 6_700,
            label: "6.7K",
        },
        FctBucket {
            max_size: 20_000,
            label: "20K",
        },
        FctBucket {
            max_size: 30_000,
            label: "30K",
        },
        FctBucket {
            max_size: 50_000,
            label: "50K",
        },
        FctBucket {
            max_size: 73_000,
            label: "73K",
        },
        FctBucket {
            max_size: 200_000,
            label: "200K",
        },
        FctBucket {
            max_size: 1_000_000,
            label: "1M",
        },
        FctBucket {
            max_size: 2_000_000,
            label: "2M",
        },
        FctBucket {
            max_size: 5_000_000,
            label: "5M",
        },
        FctBucket {
            max_size: 30_000_000,
            label: "30M",
        },
    ]
}

/// The FB_Hadoop flow-size buckets of Figures 11/12.
pub fn fb_hadoop_buckets() -> Vec<FctBucket> {
    vec![
        FctBucket {
            max_size: 324,
            label: "324",
        },
        FctBucket {
            max_size: 400,
            label: "400",
        },
        FctBucket {
            max_size: 500,
            label: "500",
        },
        FctBucket {
            max_size: 600,
            label: "600",
        },
        FctBucket {
            max_size: 700,
            label: "700",
        },
        FctBucket {
            max_size: 1_000,
            label: "1K",
        },
        FctBucket {
            max_size: 7_000,
            label: "7K",
        },
        FctBucket {
            max_size: 46_000,
            label: "46K",
        },
        FctBucket {
            max_size: 120_000,
            label: "120K",
        },
        FctBucket {
            max_size: 10_000_000,
            label: "10M",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: Bandwidth = Bandwidth::from_gbps(25);
    const RTT: Duration = Duration::from_us(9);

    #[test]
    fn ideal_fct_includes_headers_and_delay() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        // 1000-byte flow = one packet of 1106 B at 25 Gbps = 354 ns, plus
        // 4.5 us one-way delay.
        let ideal = a.ideal_fct(1000);
        let expected = Duration::from_us(4) + Duration::from_ps(500_000) + LINE.tx_time(1106);
        assert_eq!(ideal, expected);
        // A 10 MB flow is dominated by serialization: ≈ 3.5 ms.
        let big = a.ideal_fct(10_000_000).as_us_f64();
        assert!(big > 3_300.0 && big < 3_700.0, "big = {big}");
        // Without INT the ideal is slightly smaller.
        let no_int = FctAnalyzer::new(LINE, RTT, false);
        assert!(no_int.ideal_fct(10_000_000) < a.ideal_fct(10_000_000));
    }

    #[test]
    fn slowdown_is_relative_to_ideal_and_clamped() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        let ideal = a.ideal_fct(1000);
        let s = a.slowdown(&FlowFct {
            size: 1000,
            fct: ideal * 10,
        });
        assert!((s - 10.0).abs() < 0.01);
        // Faster than ideal (measurement noise) clamps to 1.
        let s = a.slowdown(&FlowFct {
            size: 1000,
            fct: ideal / 2,
        });
        assert_eq!(s, 1.0);
    }

    #[test]
    fn bucketing_groups_by_size() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        let buckets = websearch_buckets();
        let mut flows = Vec::new();
        // 10 small flows with slowdown 2, 5 large flows with slowdown 4.
        for _ in 0..10 {
            flows.push(FlowFct {
                size: 2_000,
                fct: a.ideal_fct(2_000) * 2,
            });
        }
        for _ in 0..5 {
            flows.push(FlowFct {
                size: 4_000_000,
                fct: a.ideal_fct(4_000_000) * 4,
            });
        }
        let rows = a.bucketed_slowdowns(&flows, &buckets);
        assert_eq!(rows.len(), buckets.len());
        let small = rows.iter().find(|r| r.bucket.label == "<3K").unwrap();
        assert_eq!(small.stats.unwrap().count, 10);
        assert!((small.stats.unwrap().p50 - 2.0).abs() < 0.01);
        let big = rows.iter().find(|r| r.bucket.label == "5M").unwrap();
        assert_eq!(big.stats.unwrap().count, 5);
        assert!((big.stats.unwrap().p95 - 4.0).abs() < 0.01);
        let empty = rows.iter().find(|r| r.bucket.label == "30M").unwrap();
        assert!(empty.stats.is_none());
    }

    #[test]
    fn flows_larger_than_every_bucket_go_to_the_last_one() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        let buckets = fb_hadoop_buckets();
        let flows = vec![FlowFct {
            size: 50_000_000,
            fct: a.ideal_fct(50_000_000) * 3,
        }];
        let rows = a.bucketed_slowdowns(&flows, &buckets);
        assert_eq!(rows.last().unwrap().stats.unwrap().count, 1);
    }

    #[test]
    fn bucket_tables_match_paper_axes() {
        assert_eq!(websearch_buckets().len(), 11);
        assert_eq!(fb_hadoop_buckets().len(), 10);
        assert_eq!(websearch_buckets().last().unwrap().max_size, 30_000_000);
        assert_eq!(fb_hadoop_buckets()[8].label, "120K");
    }

    #[test]
    fn overall_summary() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        let flows: Vec<FlowFct> = (1..=100)
            .map(|k| FlowFct {
                size: 1000,
                fct: a.ideal_fct(1000) * k,
            })
            .collect();
        let s = a.overall(&flows).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.0).abs() < 1.0);
        assert!(a.overall(&[]).is_none());
    }

    #[test]
    fn grouped_summaries_split_by_key() {
        let a = FctAnalyzer::new(LINE, RTT, true);
        let slow = |mult: u64| FlowFct {
            size: 1000,
            fct: a.ideal_fct(1000) * mult,
        };
        // Mice (key 1) at 2x ideal, elephants (key 0) at 10x; key 7 unused
        // keys never appear, keys come back ascending.
        let flows = vec![(1, slow(2)), (0, slow(10)), (1, slow(2)), (0, slow(10))];
        let groups = a.grouped(&flows);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[1].0, 1);
        let g0 = groups[0].1.unwrap();
        let g1 = groups[1].1.unwrap();
        assert_eq!(g0.count, 2);
        assert_eq!(g1.count, 2);
        assert!(g0.p50 > g1.p50, "elephants slower than mice");
        assert!((g1.p50 - 2.0).abs() < 0.1);
        assert!(a.grouped(&[]).is_empty());
    }
}
