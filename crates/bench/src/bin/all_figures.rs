//! Run every figure harness at its default (laptop) scale and print the
//! combined report — convenient for refreshing EXPERIMENTS.md.
fn main() {
    use hpcc_bench::figures as f;
    print!("{}", f::tab_int_overhead());
    print!("{}", f::fluid_convergence());
    print!("{}", f::fig01(20));
    print!("{}", f::fig02(20, 0.3));
    print!("{}", f::fig03(20));
    print!("{}", f::fig06(2));
    print!("{}", f::fig09(8));
    print!("{}", f::fig10(20));
    print!("{}", f::fig11(15, 0.3, true, false));
    print!("{}", f::fig11(15, 0.5, false, false));
    print!("{}", f::fig12(15, 0.3));
    print!("{}", f::fig13(2));
    print!("{}", f::fig14(10));
}
