//! Locality-aware and skewed host-pair sampling.
//!
//! The paper's background workloads draw src/dst pairs uniformly at random,
//! but real datacenter traffic is neither rack-uniform nor host-uniform:
//! most bytes stay inside a rack and a few "heavy hitter" hosts dominate.
//! This module supplies the **pair sampler** stage of the workload pipeline
//! (size sampler × pair sampler × arrival process):
//!
//! * [`LocalitySpec`] — a rack-level traffic matrix: either a single
//!   intra-rack fraction (off-rack spread evenly) or a full row-stochastic
//!   rack×rack matrix, validated against the topology's rack count,
//! * [`SkewSpec`] — a Zipf-like heavy-hitter model over hosts: endpoint
//!   popularity follows `1/rank^exponent`, with the rank order drawn
//!   deterministically from the workload seed,
//! * [`PairSpec`] — the plain-data choice between uniform, locality-driven
//!   and skewed sampling (what scenario specs and campaign manifests carry),
//! * [`PairSampler`] — the resolved runtime sampler the
//!   [`crate::LoadGenerator`] consumes.
//!
//! All samplers guarantee `src != dst` and draw every random number from the
//! in-tree deterministic [`SplitMix64`], so sampled pair sequences are a
//! pure function of (spec, topology racks, seed). The uniform sampler
//! reproduces the historical generator's draw sequence bit for bit, keeping
//! pre-existing scenario digests pinned.

use hpcc_types::rng::{derive_seed, SplitMix64};
use std::fmt;

/// Error raised when a locality/skew specification is invalid for the
/// topology it is applied to (matrix shape, row sums, parameter ranges).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalityError(pub String);

impl fmt::Display for LocalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "locality error: {}", self.0)
    }
}

impl std::error::Error for LocalityError {}

fn err<T>(msg: impl Into<String>) -> Result<T, LocalityError> {
    Err(LocalityError(msg.into()))
}

/// Tolerance for row sums of a traffic matrix (`|sum - 1| <= 1e-6`).
const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// A rack-level traffic matrix, as plain data.
///
/// Racks come from [`TopologySpec::host_rack_ids`] (a host's rack is its
/// first-hop switch), so the spec stays valid before the topology is
/// instantiated and the same spec can sweep across fabrics.
///
/// [`TopologySpec::host_rack_ids`]: ../../hpcc_topology/struct.TopologySpec.html#method.host_rack_ids
#[derive(Clone, Debug, PartialEq)]
pub enum LocalitySpec {
    /// With probability `fraction` the destination shares the source's rack;
    /// otherwise it is uniform over the other racks. Equivalent to the
    /// row-stochastic matrix with `fraction` on the diagonal and
    /// `(1 - fraction) / (racks - 1)` elsewhere.
    IntraRack {
        /// Probability that a flow stays inside its source rack, in `[0, 1]`.
        fraction: f64,
    },
    /// An explicit rack×rack matrix: `rows[s][d]` is the probability that a
    /// flow sourced in rack `s` targets rack `d`. Every row must sum to 1
    /// (within `1e-6`) with non-negative finite entries, and the matrix must
    /// be square with one row per topology rack.
    Matrix {
        /// The row-stochastic matrix, one row per source rack.
        rows: Vec<Vec<f64>>,
    },
}

impl LocalitySpec {
    /// Validate against a topology with `racks` racks.
    pub fn validate(&self, racks: usize) -> Result<(), LocalityError> {
        match self {
            LocalitySpec::IntraRack { fraction } => {
                if !fraction.is_finite() || !(0.0..=1.0).contains(fraction) {
                    return err(format!("intra-rack fraction {fraction} not in [0, 1]"));
                }
                if racks < 2 && *fraction < 1.0 {
                    return err(format!(
                        "intra-rack fraction {fraction} < 1 needs at least 2 racks, topology has {racks}"
                    ));
                }
                Ok(())
            }
            LocalitySpec::Matrix { rows } => {
                if rows.len() != racks {
                    return err(format!(
                        "matrix has {} rows, topology has {racks} racks",
                        rows.len()
                    ));
                }
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != racks {
                        return err(format!(
                            "matrix row {i} has {} entries, expected {racks}",
                            row.len()
                        ));
                    }
                    let mut sum = 0.0;
                    for (j, &p) in row.iter().enumerate() {
                        if !p.is_finite() || p < 0.0 {
                            return err(format!(
                                "matrix entry [{i}][{j}] = {p} is not a probability"
                            ));
                        }
                        sum += p;
                    }
                    if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                        return err(format!("matrix row {i} sums to {sum}, expected 1"));
                    }
                }
                Ok(())
            }
        }
    }

    /// The effective row-stochastic matrix for `racks` racks (expanding
    /// [`LocalitySpec::IntraRack`] into its equivalent matrix). Call
    /// [`LocalitySpec::validate`] first; this assumes a valid spec.
    fn rows(&self, racks: usize) -> Vec<Vec<f64>> {
        match self {
            LocalitySpec::IntraRack { fraction } => {
                let off = if racks > 1 {
                    (1.0 - fraction) / (racks - 1) as f64
                } else {
                    0.0
                };
                (0..racks)
                    .map(|s| {
                        (0..racks)
                            .map(|d| if s == d { *fraction } else { off })
                            .collect()
                    })
                    .collect()
            }
            LocalitySpec::Matrix { rows } => rows.clone(),
        }
    }
}

/// A Zipf-like heavy-hitter model over hosts, as plain data.
///
/// Both endpoints are drawn from a Zipf distribution over the host set:
/// the `k`-th most popular host is chosen with probability proportional to
/// `1 / (k + 1)^exponent`. *Which* host occupies which popularity rank is a
/// deterministic shuffle derived from the workload seed, so different seeds
/// move the hot spots around while the same seed always reproduces the same
/// traffic. `exponent = 0` degenerates to uniform; the destination is
/// re-drawn while it equals the source (with a deterministic fallback), so
/// `src != dst` always holds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SkewSpec {
    /// Zipf exponent (≥ 0, finite). Datacenter studies typically fit
    /// 1.0–1.5; larger is more skewed.
    pub exponent: f64,
}

impl SkewSpec {
    /// A skew spec with the given exponent.
    pub fn new(exponent: f64) -> Self {
        SkewSpec { exponent }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), LocalityError> {
        if !self.exponent.is_finite() || self.exponent < 0.0 {
            return err(format!(
                "zipf exponent {} must be finite and >= 0",
                self.exponent
            ));
        }
        Ok(())
    }
}

/// How a workload draws its src/dst host pairs, as plain data. Resolved into
/// a [`PairSampler`] against a concrete topology at build time.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum PairSpec {
    /// Source and destination uniform over distinct hosts (the paper's
    /// default and the historical behavior).
    #[default]
    Uniform,
    /// Rack-level locality (see [`LocalitySpec`]); hosts inside the chosen
    /// racks are picked uniformly.
    Locality(LocalitySpec),
    /// Zipf heavy-hitter skew over hosts (see [`SkewSpec`]).
    Skew(SkewSpec),
}

impl PairSpec {
    /// Short display name ("Uniform", "IntraRack", "Matrix", "Skew").
    pub fn name(&self) -> &'static str {
        match self {
            PairSpec::Uniform => "Uniform",
            PairSpec::Locality(LocalitySpec::IntraRack { .. }) => "IntraRack",
            PairSpec::Locality(LocalitySpec::Matrix { .. }) => "Matrix",
            PairSpec::Skew(_) => "Skew",
        }
    }

    /// Resolve into a runtime sampler for `n_hosts` hosts whose rack
    /// assignment is `rack_of` (one rack id per host index, as produced by
    /// `TopologySpec::host_rack_ids`). `seed` feeds only the *static*
    /// randomness (the skew popularity shuffle) — per-flow draws come from
    /// the RNG handed to [`PairSampler::sample`].
    pub fn build(
        &self,
        n_hosts: usize,
        rack_of: &[usize],
        seed: u64,
    ) -> Result<PairSampler, LocalityError> {
        if n_hosts < 2 {
            return err(format!(
                "pair sampling needs at least 2 hosts, got {n_hosts}"
            ));
        }
        match self {
            PairSpec::Uniform => Ok(PairSampler::Uniform { n: n_hosts }),
            PairSpec::Locality(spec) => {
                if rack_of.len() != n_hosts {
                    return err(format!(
                        "rack assignment covers {} hosts, topology has {n_hosts}",
                        rack_of.len()
                    ));
                }
                let racks = rack_of.iter().copied().max().map_or(0, |m| m + 1);
                spec.validate(racks)?;
                let mut members: Vec<Vec<usize>> = vec![Vec::new(); racks];
                for (host, &r) in rack_of.iter().enumerate() {
                    members[r].push(host);
                }
                if let Some(empty) = members.iter().position(|m| m.is_empty()) {
                    return err(format!("rack {empty} has no hosts"));
                }
                let cum_rows = self::cumulative_rows(spec.rows(racks));
                Ok(PairSampler::Locality {
                    rack_of: rack_of.to_vec(),
                    members,
                    cum_rows,
                })
            }
            PairSpec::Skew(spec) => {
                spec.validate()?;
                // Popularity ranks: a deterministic Fisher–Yates shuffle of
                // the hosts from a dedicated seed stream, so "who is hot"
                // depends on the seed but never on per-flow draws.
                let mut rng = SplitMix64::new(derive_seed(seed, 0x5157)); // "skew" stream
                let mut perm: Vec<usize> = (0..n_hosts).collect();
                for i in (1..n_hosts).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    perm.swap(i, j);
                }
                let mut cum = Vec::with_capacity(n_hosts);
                let mut total = 0.0;
                for k in 0..n_hosts {
                    total += 1.0 / ((k + 1) as f64).powf(spec.exponent);
                    cum.push(total);
                }
                for c in &mut cum {
                    *c /= total;
                }
                Ok(PairSampler::Skew { cum, perm })
            }
        }
    }
}

fn cumulative_rows(rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    rows.into_iter()
        .map(|row| {
            let mut sum = 0.0;
            let mut cum: Vec<f64> = row
                .into_iter()
                .map(|p| {
                    sum += p;
                    sum
                })
                .collect();
            // Guard the last bucket against round-off so a u ~ 1.0 draw
            // always lands inside the matrix.
            if let Some(last) = cum.last_mut() {
                *last = f64::INFINITY;
            }
            cum
        })
        .collect()
}

/// A resolved pair sampler (see [`PairSpec`]). Samplers are immutable; all
/// per-flow randomness comes from the RNG passed to
/// [`PairSampler::sample`].
#[derive(Clone, Debug)]
pub enum PairSampler {
    /// Uniform over distinct host pairs.
    Uniform {
        /// Number of hosts.
        n: usize,
    },
    /// Rack-matrix locality.
    Locality {
        /// Rack id per host index.
        rack_of: Vec<usize>,
        /// Host indices per rack.
        members: Vec<Vec<usize>>,
        /// Cumulative probability rows of the rack matrix.
        cum_rows: Vec<Vec<f64>>,
    },
    /// Zipf heavy-hitter skew.
    Skew {
        /// Cumulative Zipf weights over popularity ranks (normalized).
        cum: Vec<f64>,
        /// `perm[rank]` = host index occupying that popularity rank.
        perm: Vec<usize>,
    },
}

impl PairSampler {
    /// Draw one `(src, dst)` host-index pair; `src != dst` is guaranteed.
    pub fn sample(&self, rng: &mut SplitMix64) -> (usize, usize) {
        match self {
            // Exactly the historical draw sequence (src below n, dst below
            // n-1 with shift) — existing uniform-workload digests depend on
            // it.
            PairSampler::Uniform { n } => {
                let src = rng.next_below(*n as u64) as usize;
                let mut dst = rng.next_below(*n as u64 - 1) as usize;
                if dst >= src {
                    dst += 1;
                }
                (src, dst)
            }
            PairSampler::Locality {
                rack_of,
                members,
                cum_rows,
            } => {
                let n: usize = rack_of.len();
                let src = rng.next_below(n as u64) as usize;
                let src_rack = rack_of[src];
                let u = rng.next_f64();
                let dst_rack = select_bucket(&cum_rows[src_rack], u);
                let pool = &members[dst_rack];
                let dst = if dst_rack == src_rack {
                    if pool.len() < 2 {
                        // A one-host rack cannot host an intra-rack flow;
                        // fall back to a uniform draw over the other hosts.
                        let mut d = rng.next_below(n as u64 - 1) as usize;
                        if d >= src {
                            d += 1;
                        }
                        d
                    } else {
                        // Uniform over the rack minus the source.
                        let pos = rack_position(pool, src);
                        let mut k = rng.next_below(pool.len() as u64 - 1) as usize;
                        if k >= pos {
                            k += 1;
                        }
                        pool[k]
                    }
                } else {
                    pool[rng.next_below(pool.len() as u64) as usize]
                };
                (src, dst)
            }
            PairSampler::Skew { cum, perm } => {
                let draw = |rng: &mut SplitMix64| {
                    let u = rng.next_f64();
                    perm[cum.partition_point(|&c| c < u).min(perm.len() - 1)]
                };
                let src = draw(rng);
                let mut dst = src;
                for _ in 0..64 {
                    dst = draw(rng);
                    if dst != src {
                        break;
                    }
                }
                if dst == src {
                    // Degenerate skew (essentially all mass on one host):
                    // deterministic fallback to the next host index.
                    dst = (src + 1) % perm.len();
                }
                (src, dst)
            }
        }
    }
}

/// Map a uniform draw `u` onto a bucket of a cumulative-probability row,
/// never returning a zero-probability bucket. `partition_point(c < u)`
/// alone would pick a leading zero-weight bucket when `u == 0.0` exactly
/// (a 2^-53 event, but it would violate the matrix contract); skipping
/// zero-width buckets closes that hole. The last bucket's cumulative is
/// `INFINITY`, so the scan always terminates in range.
fn select_bucket(cum_row: &[f64], u: f64) -> usize {
    let mut i = cum_row.partition_point(|&c| c < u);
    while i + 1 < cum_row.len() {
        let width = cum_row[i] - if i == 0 { 0.0 } else { cum_row[i - 1] };
        if width > 0.0 {
            break;
        }
        i += 1;
    }
    i
}

/// Position of `host` inside its (sorted-insertion) rack member list.
fn rack_position(pool: &[usize], host: usize) -> usize {
    pool.iter()
        .position(|&h| h == host)
        .expect("source host is a member of its own rack")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draw_many(sampler: &PairSampler, seed: u64, n: usize) -> Vec<(usize, usize)> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| sampler.sample(&mut rng)).collect()
    }

    #[test]
    fn uniform_reproduces_the_historical_draw_sequence() {
        let sampler = PairSpec::Uniform.build(8, &[0; 8], 1).unwrap();
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..200 {
            let (src, dst) = sampler.sample(&mut a);
            let old_src = b.next_below(8) as usize;
            let mut old_dst = b.next_below(7) as usize;
            if old_dst >= old_src {
                old_dst += 1;
            }
            assert_eq!((src, dst), (old_src, old_dst));
            assert_ne!(src, dst);
        }
    }

    #[test]
    fn locality_validation_rejects_bad_matrices() {
        let cases: Vec<(LocalitySpec, usize, &str)> = vec![
            (
                LocalitySpec::IntraRack { fraction: 1.2 },
                4,
                "not in [0, 1]",
            ),
            (
                LocalitySpec::IntraRack { fraction: -0.1 },
                4,
                "not in [0, 1]",
            ),
            (
                LocalitySpec::IntraRack { fraction: f64::NAN },
                4,
                "not in [0, 1]",
            ),
            (
                LocalitySpec::IntraRack { fraction: 0.5 },
                1,
                "at least 2 racks",
            ),
            (
                LocalitySpec::Matrix {
                    rows: vec![vec![1.0]],
                },
                2,
                "1 rows",
            ),
            (
                LocalitySpec::Matrix {
                    rows: vec![vec![0.5, 0.5], vec![1.0]],
                },
                2,
                "row 1 has 1 entries",
            ),
            (
                LocalitySpec::Matrix {
                    rows: vec![vec![0.7, 0.2], vec![0.5, 0.5]],
                },
                2,
                "row 0 sums to",
            ),
            (
                LocalitySpec::Matrix {
                    rows: vec![vec![1.5, -0.5], vec![0.5, 0.5]],
                },
                2,
                "not a probability",
            ),
        ];
        for (spec, racks, needle) in cases {
            let e = spec.validate(racks).unwrap_err();
            assert!(e.to_string().contains(needle), "{spec:?}: {e}");
        }
        // Valid specs pass.
        LocalitySpec::IntraRack { fraction: 0.8 }
            .validate(4)
            .unwrap();
        LocalitySpec::Matrix {
            rows: vec![vec![0.9, 0.1], vec![0.3, 0.7]],
        }
        .validate(2)
        .unwrap();
    }

    #[test]
    fn locality_sampler_never_emits_self_pairs_and_respects_the_fraction() {
        // 4 racks of 4 hosts.
        let rack_of: Vec<usize> = (0..16).map(|h| h / 4).collect();
        let spec = PairSpec::Locality(LocalitySpec::IntraRack { fraction: 0.75 });
        let sampler = spec.build(16, &rack_of, 7).unwrap();
        let pairs = draw_many(&sampler, 11, 20_000);
        let mut intra = 0;
        for &(s, d) in &pairs {
            assert_ne!(s, d);
            assert!(s < 16 && d < 16);
            if rack_of[s] == rack_of[d] {
                intra += 1;
            }
        }
        let frac = intra as f64 / pairs.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "intra-rack fraction {frac}");
    }

    #[test]
    fn bucket_selection_never_lands_on_zero_probability_buckets() {
        // u == 0.0 exactly (the 2^-53 RNG corner) must skip leading
        // zero-weight buckets instead of emitting into them.
        let inf = f64::INFINITY;
        assert_eq!(select_bucket(&[0.0, inf], 0.0), 1);
        assert_eq!(select_bucket(&[0.0, 0.0, 0.4, inf], 0.0), 2);
        // Ordinary draws are unchanged by the skip.
        assert_eq!(select_bucket(&[0.3, 0.3, inf], 0.2), 0);
        assert_eq!(select_bucket(&[0.3, 0.3, inf], 0.3), 0);
        assert_eq!(select_bucket(&[0.3, 0.3, inf], 0.31), 2);
        assert_eq!(select_bucket(&[0.5, inf], 0.9999), 1);
    }

    #[test]
    fn locality_matrix_rows_steer_destination_racks() {
        // Rack 0 sends everything to rack 1; rack 1 splits evenly.
        let rack_of = vec![0, 0, 1, 1];
        let spec = PairSpec::Locality(LocalitySpec::Matrix {
            rows: vec![vec![0.0, 1.0], vec![0.5, 0.5]],
        });
        let sampler = spec.build(4, &rack_of, 3).unwrap();
        for (s, d) in draw_many(&sampler, 5, 5_000) {
            assert_ne!(s, d);
            if rack_of[s] == 0 {
                assert_eq!(rack_of[d], 1, "rack 0 must only target rack 1");
            }
        }
    }

    #[test]
    fn single_host_rack_intra_draw_falls_back_instead_of_looping() {
        // Rack 1 has one host; an all-intra matrix would strand it.
        let rack_of = vec![0, 0, 1];
        let spec = PairSpec::Locality(LocalitySpec::IntraRack { fraction: 1.0 });
        let sampler = spec.build(3, &rack_of, 1).unwrap();
        for (s, d) in draw_many(&sampler, 2, 2_000) {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn skew_is_deterministic_per_seed_and_actually_skewed() {
        let spec = PairSpec::Skew(SkewSpec::new(1.2));
        let a = spec.build(32, &[0; 32], 9).unwrap();
        let b = spec.build(32, &[0; 32], 9).unwrap();
        // Same build seed + same draw seed = identical pair sequence.
        assert_eq!(draw_many(&a, 4, 1_000), draw_many(&b, 4, 1_000));
        // A different build seed relocates the hot hosts.
        let c = spec.build(32, &[0; 32], 10).unwrap();
        assert_ne!(draw_many(&a, 4, 1_000), draw_many(&c, 4, 1_000));
        // The most popular source dominates: its share is far above 1/32.
        let pairs = draw_many(&a, 4, 20_000);
        let mut counts = vec![0usize; 32];
        for &(s, d) in &pairs {
            assert_ne!(s, d);
            counts[s] += 1;
        }
        let hottest = *counts.iter().max().unwrap() as f64 / pairs.len() as f64;
        assert!(
            hottest > 0.15,
            "hottest host share {hottest} (uniform ~ 0.03)"
        );
        // Exponent 0 degenerates to (shuffled) uniform.
        let flat = PairSpec::Skew(SkewSpec::new(0.0))
            .build(32, &[0; 32], 9)
            .unwrap();
        let mut counts = vec![0usize; 32];
        for (s, _) in draw_many(&flat, 4, 32_000) {
            counts[s] += 1;
        }
        let hottest = *counts.iter().max().unwrap() as f64 / 32_000.0;
        assert!(hottest < 0.05, "flat skew share {hottest}");
    }

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(PairSpec::Uniform.build(1, &[0], 1).is_err());
        assert!(PairSpec::Skew(SkewSpec::new(f64::NAN))
            .build(4, &[0; 4], 1)
            .is_err());
        assert!(PairSpec::Skew(SkewSpec::new(-1.0))
            .build(4, &[0; 4], 1)
            .is_err());
        // Rack assignment must cover every host.
        let spec = PairSpec::Locality(LocalitySpec::IntraRack { fraction: 0.5 });
        assert!(spec.build(4, &[0, 1], 1).is_err());
        // A rack id with no hosts (sparse ids) is rejected.
        let sparse = PairSpec::Locality(LocalitySpec::Matrix {
            rows: vec![vec![0.5, 0.0, 0.5]; 3],
        });
        assert!(sparse.build(4, &[0, 0, 2, 2], 1).is_err());
    }
}
