//! Chaos test for the elastic campaign fabric: a coordinator and three
//! real worker *processes*, two of which fail mid-campaign —
//!
//! * worker `wedge` executes two scenarios, then goes silent *without*
//!   sending the second result (heartbeats stop, connection stays open:
//!   what a wedged worker looks like). The parked process is SIGKILLed.
//! * worker `flake` disconnects — no bye — right after its first result.
//! * worker `steady` behaves.
//!
//! The fabric must ride out both failures: the merged report must be
//! bit-identical (per-scenario FNV digests *and* canonical report JSON)
//! to `run_serial()`, the checkpoint must replay to the same digests, and
//! a coordinator restarted over the complete checkpoint must finish
//! without re-running a single scenario.
//!
//! Like `tests/distributed_campaign.rs`, worker processes are this very
//! test binary re-spawned with `std::env::current_exe()`:
//! [`fabric_worker_entry`] doubles as the worker `main` when
//! `HPCC_FABRIC_JOIN` is set, and is a no-op pass otherwise.

use hpcc::core::fabric::{self, Coordinator, FabricConfig, WorkerConfig};
use hpcc::core::presets::fabric_smoke_campaign;
use hpcc::core::wire::merge_shard_streams;
use std::env;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Worker entry point (and, without the environment variable, a no-op
/// test): join the coordinator named by `HPCC_FABRIC_JOIN` and execute
/// leases until dismissed. `HPCC_FABRIC_HANG_AFTER` / `HPCC_FABRIC_QUIT_AFTER`
/// arm the chaos hooks; `HPCC_FABRIC_NAME` names the worker.
#[test]
fn fabric_worker_entry() {
    let Ok(addr) = env::var("HPCC_FABRIC_JOIN") else {
        return;
    };
    let parse = |var: &str| env::var(var).ok().map(|v| v.parse().expect("bad count"));
    let cfg = WorkerConfig {
        name: env::var("HPCC_FABRIC_NAME").unwrap_or_else(|_| "worker".to_string()),
        heartbeat: Duration::from_millis(50),
        hang_after: parse("HPCC_FABRIC_HANG_AFTER"),
        quit_after: parse("HPCC_FABRIC_QUIT_AFTER"),
    };
    // The campaign arrives over the wire; nothing is rebuilt locally.
    let summary = fabric::join(&addr, &cfg).expect("worker join failed");
    assert!(summary.executed <= summary.campaign_len);
}

/// Spawn one worker subprocess pointed at `addr`.
fn spawn_worker(addr: &str, name: &str, hang: Option<usize>, quit: Option<usize>) -> Child {
    let exe = env::current_exe().expect("cannot locate test binary");
    let mut cmd = Command::new(&exe);
    cmd.args(["fabric_worker_entry", "--exact"])
        .env("HPCC_FABRIC_JOIN", addr)
        .env("HPCC_FABRIC_NAME", name)
        .stdout(Stdio::null());
    if let Some(n) = hang {
        cmd.env("HPCC_FABRIC_HANG_AFTER", n.to_string());
    }
    if let Some(n) = quit {
        cmd.env("HPCC_FABRIC_QUIT_AFTER", n.to_string());
    }
    cmd.spawn().expect("cannot spawn worker process")
}

#[test]
fn fabric_survives_worker_death_and_restart_resumes_from_checkpoint() {
    let campaign = fabric_smoke_campaign();
    let serial = campaign.run_serial();
    let dir = env::temp_dir().join(format!("hpcc-fabric-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cannot create temp dir");
    let checkpoint = dir.join("checkpoint.jsonl");

    let coordinator = Coordinator::bind("127.0.0.1:0").expect("cannot bind");
    let addr = coordinator.local_addr().expect("bound address").to_string();
    let cfg = FabricConfig {
        // Short lease timeout so the wedged worker is detected in test
        // time; worker heartbeats run at 50 ms, well under it.
        lease_timeout: Duration::from_millis(400),
        checkpoint: Some(checkpoint.clone()),
        ..FabricConfig::default()
    };

    // Workers connect while serve() is still warming up: the listener is
    // already bound, so their connections queue in the listen backlog.
    let mut wedge = spawn_worker(&addr, "wedge", Some(2), None);
    let mut flake = spawn_worker(&addr, "flake", None, Some(1));
    let mut steady = spawn_worker(&addr, "steady", None, None);

    let fab = coordinator
        .serve(&campaign, &cfg)
        .expect("fabric serve failed");

    // The wedged worker is parked forever; SIGKILL it mid-stream (its
    // unsent result is the "stream cut mid-write" the fabric absorbed).
    wedge.kill().expect("cannot kill wedged worker");
    wedge.wait().expect("wedged worker did not die");
    // The other two exited on their own (flake by crashing early, steady
    // after the coordinator's bye).
    assert!(flake.wait().expect("flake did not exit").success());
    assert!(steady.wait().expect("steady did not exit").success());

    // Bit-identical to serial, despite one wedge, one crash, duplicate
    // re-executions and arbitrary completion order.
    assert_eq!(fab.report.digests(), serial.digests());
    assert_eq!(fab.report.to_json_string(), serial.to_json_string());
    assert_eq!(fab.executed, campaign.len() as u64);
    assert_eq!(fab.resumed, 0);
    // The wedge held at least its unsent scenario; that lease came back.
    assert!(fab.reassigned >= 1, "reassigned {}", fab.reassigned);

    // The checkpoint replays — through the ordinary shard-merge path — to
    // the same digests the live run produced.
    let text = std::fs::read_to_string(&checkpoint).expect("checkpoint missing");
    let replayed = merge_shard_streams([text.as_str()], Some(campaign.len()))
        .expect("checkpoint must replay cleanly");
    assert_eq!(replayed.digests(), serial.digests());
    assert_eq!(replayed.to_json_string(), serial.to_json_string());

    // A restarted coordinator over the complete checkpoint finishes
    // immediately: no workers, no listener traffic, zero re-runs.
    let restarted = Coordinator::bind("127.0.0.1:0").expect("cannot rebind");
    let fab2 = restarted
        .serve(&campaign, &cfg)
        .expect("restart over checkpoint failed");
    assert_eq!(fab2.executed, 0, "restart re-ran scenarios");
    assert_eq!(fab2.resumed, campaign.len());
    assert_eq!(fab2.workers_seen, 0);
    assert_eq!(fab2.report.digests(), serial.digests());
    assert_eq!(fab2.report.to_json_string(), serial.to_json_string());

    std::fs::remove_dir_all(&dir).ok();
}
