//! Criterion benchmarks of the per-ACK cost of every congestion-control
//! algorithm (the operation a NIC performs on each acknowledgement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcc_cc::{build_cc, AckEvent, CcAlgorithm, DcqcnConfig, DctcpConfig, HpccConfig, TimelyConfig};
use hpcc_types::{Bandwidth, Duration, IntHeader, IntHopRecord, SimTime};
use std::hint::black_box;

fn per_ack_cost(c: &mut Criterion) {
    let line = Bandwidth::from_gbps(100);
    let rtt = Duration::from_us(13);
    let schemes: Vec<(&str, CcAlgorithm)> = vec![
        ("HPCC", CcAlgorithm::Hpcc(HpccConfig::default())),
        ("DCQCN", CcAlgorithm::Dcqcn(DcqcnConfig::vendor_default(line))),
        ("TIMELY", CcAlgorithm::Timely(TimelyConfig::recommended(line, rtt))),
        ("DCTCP", CcAlgorithm::Dctcp(DctcpConfig::default())),
    ];
    let mut g = c.benchmark_group("cc/on_ack");
    for (name, alg) in schemes {
        g.bench_with_input(BenchmarkId::from_parameter(name), &alg, |b, alg| {
            let mut cc = build_cc(alg, line, rtt, 1000);
            let mut int = IntHeader::new();
            int.push_hop(
                1,
                IntHopRecord {
                    bandwidth: line,
                    ts: SimTime::from_us(10),
                    tx_bytes: 1_000_000,
                    rx_bytes: 1_000_000,
                    qlen: 10_000,
                },
            );
            let mut seq = 0u64;
            let mut ts = 10u64;
            b.iter(|| {
                seq += 1000;
                ts += 1;
                let mut int2 = int;
                int2.hops[0].ts = SimTime::from_us(ts);
                int2.hops[0].tx_bytes += seq;
                let ack = AckEvent {
                    now: SimTime::from_us(ts),
                    ack_seq: seq,
                    snd_nxt: seq + 100_000,
                    newly_acked: 1000,
                    ecn_echo: seq % 7 == 0,
                    rtt: Duration::from_us(15),
                    int: &int2,
                };
                cc.on_ack(black_box(&ack));
                black_box(cc.state())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, per_ack_cost);
criterion_main!(benches);
